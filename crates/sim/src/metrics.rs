//! Simulation metrics: utility, energy, and per-task assurance statistics.

use std::fmt;

use eua_platform::TimeDelta;

use crate::ids::TaskId;
use crate::task::TaskSet;

/// Per-task outcome statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskMetrics {
    /// Jobs that arrived within the horizon.
    pub arrived: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs aborted at their termination time by the engine.
    pub aborted_by_termination: u64,
    /// Jobs aborted earlier by the policy.
    pub aborted_by_policy: u64,
    /// Total utility accrued by this task's observable jobs (those whose
    /// termination time fell within the horizon).
    pub utility: f64,
    /// Sum of `U^max` over observable jobs (the task's utility ceiling).
    pub max_utility: f64,
    /// Jobs whose termination time fell within the horizon — the
    /// population over which assurance statistics are well defined.
    pub observable: u64,
    /// Observable jobs that accrued at least `ν·U^max`.
    pub assured: u64,
    /// Completed jobs that met their critical time.
    pub critical_met: u64,
    /// Largest lateness `completion − critical_time` over completed jobs,
    /// in signed microseconds (negative = early).
    pub max_lateness_us: i64,
}

impl TaskMetrics {
    /// The empirical probability that a job accrued its required utility
    /// fraction — to be compared against the task's `ρ`.
    ///
    /// Returns `None` if no job was observable.
    #[must_use]
    pub fn assurance_rate(&self) -> Option<f64> {
        if self.observable == 0 {
            None
        } else {
            Some(self.assured as f64 / self.observable as f64)
        }
    }

    /// Fraction of arrived jobs that completed.
    #[must_use]
    pub fn completion_rate(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.completed as f64 / self.arrived as f64
        }
    }
}

/// Time spent executing at one clock frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrequencyResidency {
    /// The frequency, in MHz (cycles/µs).
    pub mhz: u64,
    /// Total execution time at this frequency.
    pub busy: TimeDelta,
}

/// Aggregate metrics of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// The simulated horizon.
    pub horizon: TimeDelta,
    /// Total utility accrued across all tasks (observable jobs only; see
    /// [`TaskMetrics::utility`]).
    pub total_utility: f64,
    /// Sum of `U^max` over all observable jobs.
    pub max_possible_utility: f64,
    /// Total energy consumed (Martin-model units).
    pub energy: f64,
    /// Time the processor spent executing jobs.
    pub busy_time: TimeDelta,
    /// Number of times the running job changed to a different job.
    pub context_switches: u64,
    /// Context switches that displaced a still-live job.
    pub preemptions: u64,
    /// Number of times the executing frequency changed.
    pub frequency_changes: u64,
    /// Per-task breakdowns, indexed by [`TaskId`].
    pub per_task: Vec<TaskMetrics>,
    /// Execution time per clock frequency, sorted by frequency.
    pub freq_residency: Vec<FrequencyResidency>,
}

impl Metrics {
    pub(crate) fn new(horizon: TimeDelta, tasks: usize) -> Self {
        Metrics {
            horizon,
            total_utility: 0.0,
            max_possible_utility: 0.0,
            energy: 0.0,
            busy_time: TimeDelta::ZERO,
            context_switches: 0,
            preemptions: 0,
            frequency_changes: 0,
            per_task: vec![TaskMetrics::default(); tasks],
            freq_residency: Vec::new(),
        }
    }

    pub(crate) fn add_residency(&mut self, mhz: u64, delta: TimeDelta) {
        match self.freq_residency.binary_search_by_key(&mhz, |r| r.mhz) {
            Ok(i) => self.freq_residency[i].busy += delta,
            Err(i) => {
                self.freq_residency
                    .insert(i, FrequencyResidency { mhz, busy: delta });
            }
        }
    }

    /// The time-weighted mean executing frequency in MHz (`None` if the
    /// processor never executed).
    #[must_use]
    pub fn mean_frequency_mhz(&self) -> Option<f64> {
        let total: u64 = self.freq_residency.iter().map(|r| r.busy.as_micros()).sum();
        if total == 0 {
            return None;
        }
        let weighted: f64 = self
            .freq_residency
            .iter()
            .map(|r| r.mhz as f64 * r.busy.as_micros() as f64)
            .sum();
        Some(weighted / total as f64)
    }

    /// The metrics of one task.
    #[must_use]
    pub fn task(&self, id: TaskId) -> &TaskMetrics {
        &self.per_task[id.index()]
    }

    /// Accrued utility as a fraction of the ceiling `Σ U^max(arrived)`.
    #[must_use]
    pub fn utility_ratio(&self) -> f64 {
        if self.max_possible_utility == 0.0 {
            0.0
        } else {
            self.total_utility / self.max_possible_utility
        }
    }

    /// Utility accrued per unit of energy — the system-level UER the paper
    /// maximizes during overloads.
    #[must_use]
    pub fn utility_per_energy(&self) -> f64 {
        if self.energy == 0.0 {
            0.0
        } else {
            self.total_utility / self.energy
        }
    }

    /// Total jobs arrived.
    #[must_use]
    pub fn jobs_arrived(&self) -> u64 {
        self.per_task.iter().map(|t| t.arrived).sum()
    }

    /// Total jobs completed.
    #[must_use]
    pub fn jobs_completed(&self) -> u64 {
        self.per_task.iter().map(|t| t.completed).sum()
    }

    /// Total jobs aborted (by engine or policy).
    #[must_use]
    pub fn jobs_aborted(&self) -> u64 {
        self.per_task
            .iter()
            .map(|t| t.aborted_by_termination + t.aborted_by_policy)
            .sum()
    }

    /// `true` when every task's empirical assurance rate meets its `ρ`
    /// requirement (tasks with no observable jobs are skipped).
    #[must_use]
    pub fn meets_assurances(&self, tasks: &TaskSet) -> bool {
        self.per_task
            .iter()
            .enumerate()
            .all(|(i, tm)| match tm.assurance_rate() {
                Some(rate) => rate + 1e-12 >= tasks.task(TaskId(i)).assurance().rho(),
                None => true,
            })
    }

    /// The largest lateness across all tasks' completed jobs, in signed
    /// microseconds.
    #[must_use]
    pub fn max_lateness_us(&self) -> i64 {
        self.per_task
            .iter()
            .filter(|t| t.completed > 0)
            .map(|t| t.max_lateness_us)
            .max()
            .unwrap_or(i64::MIN)
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "utility {:.1}/{:.1} ({:.1}%), energy {:.3e}, {} completed / {} aborted of {} jobs",
            self.total_utility,
            self.max_possible_utility,
            100.0 * self.utility_ratio(),
            self.energy,
            self.jobs_completed(),
            self.jobs_aborted(),
            self.jobs_arrived(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty_runs() {
        let m = Metrics::new(TimeDelta::from_millis(1), 2);
        assert_eq!(m.utility_ratio(), 0.0);
        assert_eq!(m.utility_per_energy(), 0.0);
        assert_eq!(m.jobs_arrived(), 0);
        assert_eq!(m.max_lateness_us(), i64::MIN);
    }

    #[test]
    fn task_metrics_rates() {
        let tm = TaskMetrics {
            arrived: 10,
            completed: 8,
            observable: 10,
            assured: 9,
            ..TaskMetrics::default()
        };
        assert_eq!(tm.assurance_rate(), Some(0.9));
        assert_eq!(tm.completion_rate(), 0.8);
        let empty = TaskMetrics::default();
        assert_eq!(empty.assurance_rate(), None);
        assert_eq!(empty.completion_rate(), 0.0);
    }

    #[test]
    fn aggregates_sum_over_tasks() {
        let mut m = Metrics::new(TimeDelta::from_millis(1), 2);
        m.per_task[0].arrived = 3;
        m.per_task[0].completed = 2;
        m.per_task[0].aborted_by_termination = 1;
        m.per_task[1].arrived = 4;
        m.per_task[1].completed = 4;
        m.per_task[1].aborted_by_policy = 0;
        assert_eq!(m.jobs_arrived(), 7);
        assert_eq!(m.jobs_completed(), 6);
        assert_eq!(m.jobs_aborted(), 1);
    }

    #[test]
    fn utility_ratio_divides() {
        let mut m = Metrics::new(TimeDelta::from_millis(1), 1);
        m.total_utility = 30.0;
        m.max_possible_utility = 40.0;
        m.energy = 10.0;
        assert!((m.utility_ratio() - 0.75).abs() < 1e-12);
        assert!((m.utility_per_energy() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_summarizes() {
        let m = Metrics::new(TimeDelta::from_millis(1), 1);
        assert!(m.to_string().contains("jobs"));
    }
}
