//! The platform bundle handed to scheduling policies.

use std::fmt;

use eua_platform::{EnergyModel, EnergySetting, Frequency, FrequencyTable};

/// A DVS processor plus its bound energy model — everything hardware-side
/// a policy needs to choose frequencies and reason about energy.
///
/// # Example
///
/// ```
/// use eua_platform::{EnergySetting, FrequencyTable};
/// use eua_sim::Platform;
///
/// let p = Platform::new(FrequencyTable::powernow_k6(), EnergySetting::e1());
/// assert_eq!(p.f_max().as_mhz(), 100);
/// assert!(p.energy().energy_per_cycle(p.f_max()) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    table: FrequencyTable,
    setting: EnergySetting,
    energy: EnergyModel,
}

impl Platform {
    /// Binds an energy setting to a frequency table (the model's static
    /// terms scale with the table's `f_m`; see
    /// [`EnergySetting::model`]).
    #[must_use]
    pub fn new(table: FrequencyTable, setting: EnergySetting) -> Self {
        let energy = setting.model(table.max());
        Platform {
            table,
            setting,
            energy,
        }
    }

    /// The paper's evaluation platform: AMD K6-2+ PowerNow! frequencies
    /// with the chosen Table 2 energy setting.
    #[must_use]
    pub fn powernow(setting: EnergySetting) -> Self {
        Platform::new(FrequencyTable::powernow_k6(), setting)
    }

    /// The available frequencies.
    #[must_use]
    pub fn table(&self) -> &FrequencyTable {
        &self.table
    }

    /// The bound energy model.
    #[must_use]
    pub fn energy(&self) -> &EnergyModel {
        &self.energy
    }

    /// The energy setting the model was built from.
    #[must_use]
    pub fn setting(&self) -> &EnergySetting {
        &self.setting
    }

    /// The highest frequency `f_m`.
    #[must_use]
    pub fn f_max(&self) -> Frequency {
        self.table.max()
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.table, self.setting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binds_energy_model_to_table_max() {
        let p = Platform::powernow(EnergySetting::e3());
        // E3: S1 = 0.5·100², S0 = 0.5·100³.
        let (_, _, s1, s0) = p.energy().coefficients();
        assert!((s1 - 5_000.0).abs() < 1e-9);
        assert!((s0 - 500_000.0).abs() < 1e-9);
    }

    #[test]
    fn accessors_expose_parts() {
        let p = Platform::new(FrequencyTable::fixed(80), EnergySetting::e1());
        assert_eq!(p.f_max().as_mhz(), 80);
        assert_eq!(p.table().len(), 1);
        assert_eq!(p.setting().name(), "E1");
        assert!(p.to_string().contains("80MHz"));
    }
}
