//! The scheduling-policy contract and a minimal reference policy.

use eua_platform::Frequency;

use crate::certificate::DecisionExplanation;
use crate::context::SchedContext;
use crate::ids::JobId;

/// A policy's answer at one scheduling event: which job to execute next,
/// at which frequency, and which live jobs to abort first.
///
/// Aborted jobs accrue no utility and are removed before execution
/// resumes; a decision must not both run and abort the same job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// The job to execute, or `None` to idle until the next event.
    pub run: Option<JobId>,
    /// The clock frequency to execute at (ignored while idling).
    pub frequency: Frequency,
    /// Jobs to abort at this instant (e.g. EUA\* dropping infeasible jobs).
    pub abort: Vec<JobId>,
}

impl Decision {
    /// Idle until the next event.
    #[must_use]
    pub fn idle(frequency: Frequency) -> Self {
        Decision {
            run: None,
            frequency,
            abort: Vec::new(),
        }
    }

    /// Run `job` at `frequency`.
    #[must_use]
    pub fn run(job: JobId, frequency: Frequency) -> Self {
        Decision {
            run: Some(job),
            frequency,
            abort: Vec::new(),
        }
    }

    /// Adds jobs to abort.
    #[must_use]
    pub fn with_aborts(mut self, abort: impl IntoIterator<Item = JobId>) -> Self {
        self.abort.extend(abort);
        self
    }
}

/// A preemptive uniprocessor scheduling policy driven by the simulator.
///
/// The engine invokes [`SchedulerPolicy::decide`] at every scheduling
/// event — job arrival, job completion, and termination-time expiry — and
/// executes the returned [`Decision`] until the next event.
pub trait SchedulerPolicy {
    /// A short display name (used in experiment tables).
    fn name(&self) -> &str;

    /// Chooses what to execute next; see [`Decision`].
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision;

    /// Clears any internal state so the policy can be reused for another
    /// run (called by the replication driver before each seed).
    fn reset(&mut self) {}

    /// Tells the policy whether the engine is recording a decision
    /// certificate for this run (called once before the run starts, after
    /// [`SchedulerPolicy::reset`]). Certifying policies should record a
    /// [`DecisionExplanation`] per decision while `on`; the default
    /// ignores the toggle.
    fn certify(&mut self, on: bool) {
        let _ = on;
    }

    /// The policy's self-explanation for its *most recent* decision, when
    /// certifying. Policies that cannot justify their decisions (or were
    /// not asked to via [`SchedulerPolicy::certify`]) return `None`, and
    /// the auditor degrades to engine-level checks for their events.
    fn explain(&self) -> Option<DecisionExplanation> {
        None
    }
}

impl<P: SchedulerPolicy + ?Sized> SchedulerPolicy for &mut P {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        (**self).decide(ctx)
    }
    fn reset(&mut self) {
        (**self).reset();
    }
    fn certify(&mut self, on: bool) {
        (**self).certify(on);
    }
    fn explain(&self) -> Option<DecisionExplanation> {
        (**self).explain()
    }
}

impl SchedulerPolicy for Box<dyn SchedulerPolicy> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        (**self).decide(ctx)
    }
    fn reset(&mut self) {
        (**self).reset();
    }
    fn certify(&mut self, on: bool) {
        (**self).certify(on);
    }
    fn explain(&self) -> Option<DecisionExplanation> {
        (**self).explain()
    }
}

/// The simplest correct baseline: earliest-critical-time-first at the
/// maximum frequency, never aborting proactively.
///
/// This is the normalization baseline of the paper's Figure 2 ("EDF that
/// always uses the highest frequency") in its non-aborting form; the
/// richer deadline-based comparators (with feasibility aborts and DVS)
/// live in the `eua-core` crate.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxSpeedEdf {
    _private: (),
}

impl MaxSpeedEdf {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        MaxSpeedEdf::default()
    }
}

impl SchedulerPolicy for MaxSpeedEdf {
    fn name(&self) -> &str {
        "edf-fmax"
    }

    // eua-lint: hot
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        let f = ctx.platform.f_max();
        let next = ctx
            .jobs
            .iter()
            .min_by_key(|j| (j.critical_time, j.id))
            .map(|j| j.id);
        match next {
            Some(id) => Decision::run(id, f),
            None => Decision::idle(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_platform::{Cycles, EnergySetting, SimTime, TimeDelta};
    use eua_tuf::Tuf;
    use eua_uam::demand::DemandModel;
    use eua_uam::{Assurance, UamSpec};

    use crate::context::{JobView, SchedEvent};
    use crate::ids::TaskId;
    use crate::platform_view::Platform;
    use crate::task::{Task, TaskSet};

    fn one_task_set() -> TaskSet {
        let p = TimeDelta::from_millis(10);
        TaskSet::new(vec![Task::new(
            "t",
            Tuf::step(1.0, p).unwrap(),
            UamSpec::new(4, p).unwrap(),
            DemandModel::deterministic(100.0).unwrap(),
            Assurance::new(1.0, 0.5).unwrap(),
        )
        .unwrap()])
        .unwrap()
    }

    fn view(id: u64, critical_us: u64) -> JobView {
        JobView {
            id: JobId(id),
            task: TaskId(0),
            arrival: SimTime::ZERO,
            critical_time: SimTime::from_micros(critical_us),
            termination: SimTime::from_micros(critical_us + 10),
            remaining: Cycles::new(5),
            executed: Cycles::ZERO,
        }
    }

    #[test]
    fn decision_builders() {
        let f = Frequency::from_mhz(100);
        let d = Decision::run(JobId(1), f).with_aborts([JobId(2), JobId(3)]);
        assert_eq!(d.run, Some(JobId(1)));
        assert_eq!(d.abort, vec![JobId(2), JobId(3)]);
        let i = Decision::idle(f);
        assert_eq!(i.run, None);
        assert!(i.abort.is_empty());
    }

    #[test]
    fn max_speed_edf_picks_earliest_critical_time() {
        let tasks = one_task_set();
        let platform = Platform::powernow(EnergySetting::e1());
        let jobs = vec![view(0, 500), view(1, 100), view(2, 300)];
        let ctx = SchedContext {
            now: SimTime::ZERO,
            event: SchedEvent::Arrival,
            jobs: &jobs,
            tasks: &tasks,
            platform: &platform,
            running: None,
            energy_used: 0.0,
        };
        let mut p = MaxSpeedEdf::new();
        let d = p.decide(&ctx);
        assert_eq!(d.run, Some(JobId(1)));
        assert_eq!(d.frequency.as_mhz(), 100);
    }

    #[test]
    fn max_speed_edf_breaks_ties_by_id() {
        let tasks = one_task_set();
        let platform = Platform::powernow(EnergySetting::e1());
        let jobs = vec![view(5, 100), view(3, 100)];
        let ctx = SchedContext {
            now: SimTime::ZERO,
            event: SchedEvent::Arrival,
            jobs: &jobs,
            tasks: &tasks,
            platform: &platform,
            running: None,
            energy_used: 0.0,
        };
        assert_eq!(MaxSpeedEdf::new().decide(&ctx).run, Some(JobId(3)));
    }

    #[test]
    fn max_speed_edf_idles_without_jobs() {
        let tasks = one_task_set();
        let platform = Platform::powernow(EnergySetting::e1());
        let ctx = SchedContext {
            now: SimTime::ZERO,
            event: SchedEvent::Start,
            jobs: &[],
            tasks: &tasks,
            platform: &platform,
            running: None,
            energy_used: 0.0,
        };
        assert_eq!(MaxSpeedEdf::new().decide(&ctx).run, None);
    }
}
