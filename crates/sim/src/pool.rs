//! A first-party scoped-thread worker pool for embarrassingly parallel
//! sweep work (per-seed replications, experiment-grid cells).
//!
//! The build environment is offline — no `rayon`, no `crossbeam` — so
//! this module implements the minimum needed on plain `std`:
//! [`std::thread::scope`] workers pulling `(index, item)` pairs from a
//! mutex-guarded queue and returning `(index, result)` pairs through
//! their join handles. Results are re-assembled in **input order**, so a
//! parallel map is observably identical to the sequential one.
//!
//! Design points (see DESIGN.md §9 for the full rationale):
//!
//! * **Scoped threads, no `'static`:** workers borrow the caller's data
//!   (task sets, platforms, workloads) directly; nothing is cloned or
//!   `Arc`-wrapped.
//! * **Worker-local state via factory:** [`map_parallel_with`] builds one
//!   state value (e.g. a scheduling policy) per *worker*, not per item,
//!   so non-`Sync` mutable policy state never crosses threads and
//!   construction cost is amortized across the worker's items.
//! * **Panics surface as errors:** a panicking job is reported as
//!   [`PoolError::WorkerPanic`] after every other worker has drained the
//!   queue — one poisoned item does not take down the process or lose
//!   the siblings' completed work.
//!
//! This is the only module in the workspace allowed to spawn threads;
//! `ci.sh` greps for `thread::spawn`/`thread::scope` elsewhere.

use std::any::Any;
use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::thread;

/// Errors from a parallel map.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PoolError {
    /// A worker job panicked. Carries the panic payload's message and the
    /// failing item's label (e.g. the `(policy, seed)` cell), so a
    /// crashed sweep cell is diagnosable from the error alone.
    WorkerPanic {
        /// The failing item's label, from the caller's labeler (the
        /// default is `item {index}`).
        label: String,
        /// The panic payload's message, when it carried one.
        message: String,
    },
    /// A result slot was never filled (only reachable through a panic
    /// that was itself lost, kept as a defensive invariant check).
    MissingResult {
        /// Input index of the missing item.
        index: usize,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::WorkerPanic { label, message } => {
                write!(f, "worker panicked while running {label}: {message}")
            }
            PoolError::MissingResult { index } => {
                write!(f, "no result produced for item {index}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Resolves the worker count for a sweep: an explicit request (a parsed
/// `--jobs N` flag) wins, then the `EUA_JOBS` environment variable, then
/// the hardware's available parallelism. Zero values are ignored; the
/// result is always ≥ 1, and `1` means "run sequentially".
#[must_use]
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&n| n > 0)
        .or_else(|| {
            std::env::var("EUA_JOBS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

/// Parallel map preserving input order: `out[i] == f(i, items[i])`.
///
/// With `jobs <= 1` (or at most one item) the map runs sequentially on
/// the calling thread — the fallback path shares no code with the
/// threaded one, so `--jobs 1` is always a faithful baseline.
///
/// # Errors
///
/// [`PoolError::WorkerPanic`] if any job panicked; the remaining workers
/// still drain the queue first.
pub fn map_parallel<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Result<Vec<R>, PoolError>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    map_parallel_with(jobs, items, || (), |(), i, t| f(i, t))
}

/// [`map_parallel`] with **worker-local state**: `init` runs once per
/// worker (on that worker's thread) and the state is threaded through
/// every job the worker executes. The sequential fallback constructs the
/// state exactly once.
///
/// This is how policy values reach worker threads: policies are neither
/// `Send` nor `Sync` by contract, so each worker builds its own from a
/// `Sync` factory closure and reuses it across its share of the items.
///
/// # Errors
///
/// [`PoolError::WorkerPanic`] if any `init` or job panicked; the
/// remaining workers still drain the queue first.
pub fn map_parallel_with<S, T, R, I, F>(
    jobs: usize,
    items: Vec<T>,
    init: I,
    f: F,
) -> Result<Vec<R>, PoolError>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, T) -> R + Sync,
{
    map_parallel_labeled(jobs, items, |i, _| format!("item {i}"), init, f)
}

/// [`map_parallel_with`] with a **labeler**: `labeler(i, &items[i])`
/// names each item (e.g. `"policy eua, seed 23"`), and that label rides
/// on [`PoolError::WorkerPanic`] when the item's job panics — a crashed
/// sweep cell is then diagnosable from the error alone.
///
/// Panics are caught **per item** (the worker rebuilds its state through
/// `init` and keeps draining the queue), and when several items panic the
/// error reports the lowest input index, so the returned error is
/// deterministic across `jobs` counts.
///
/// # Errors
///
/// [`PoolError::WorkerPanic`] if any job panicked; every other item is
/// still attempted first.
pub fn map_parallel_labeled<S, T, R, L, I, F>(
    jobs: usize,
    items: Vec<T>,
    labeler: L,
    init: I,
    f: F,
) -> Result<Vec<R>, PoolError>
where
    T: Send,
    R: Send,
    L: Fn(usize, &T) -> String + Sync,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        let mut state = init();
        let mut out = Vec::with_capacity(n);
        let mut first_panic: Option<(usize, String, String)> = None;
        for (i, t) in items.into_iter().enumerate() {
            let label = labeler(i, &t);
            match catch_unwind(AssertUnwindSafe(|| f(&mut state, i, t))) {
                Ok(r) => out.push(r),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some((i, label, panic_message(payload)));
                    }
                    // The job may have torn its state mid-panic.
                    state = init();
                }
            }
        }
        return match first_panic {
            Some((_, label, message)) => Err(PoolError::WorkerPanic { label, message }),
            None => Ok(out),
        };
    }
    let workers = jobs.min(n);
    let queue = Mutex::new(items.into_iter().enumerate());
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut panics: Vec<(usize, String, String)> = Vec::new();
    // This is the one sanctioned raw-thread site in the workspace: the
    // pool everything else is required to route through.
    // eua-lint: allow(lint-thread-spawn)
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut done: Vec<(usize, R)> = Vec::new();
                    let mut failed: Vec<(usize, String, String)> = Vec::new();
                    loop {
                        // A poisoned queue means a sibling panicked while
                        // *taking* an item; treat the queue as drained.
                        let next = match queue.lock() {
                            Ok(mut q) => q.next(),
                            Err(_) => None,
                        };
                        let Some((i, t)) = next else { break };
                        let label = labeler(i, &t);
                        match catch_unwind(AssertUnwindSafe(|| f(&mut state, i, t))) {
                            Ok(r) => done.push((i, r)),
                            Err(payload) => {
                                failed.push((i, label, panic_message(payload)));
                                state = init();
                            }
                        }
                    }
                    (done, failed)
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok((done, failed)) => {
                    for (i, r) in done {
                        slots[i] = Some(r);
                    }
                    panics.extend(failed);
                }
                Err(payload) => {
                    // Only `init` or `labeler` can get here now; report it
                    // without an item attribution.
                    panics.push((
                        usize::MAX,
                        "worker setup".to_string(),
                        panic_message(payload),
                    ));
                }
            }
        }
    });
    if let Some((_, label, message)) = panics.into_iter().min_by(|a, b| a.0.cmp(&b.0)) {
        return Err(PoolError::WorkerPanic { label, message });
    }
    let mut out = Vec::with_capacity(n);
    for (index, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(r) => out.push(r),
            None => return Err(PoolError::MissingResult { index }),
        }
    }
    Ok(out)
}

/// [`map_parallel_labeled`] that **settles** instead of aborting: every
/// item produces a slot, and a panicking item's slot is
/// `Err(PoolError::WorkerPanic)` carrying that item's label, while the
/// surviving items' results are returned intact. Chaos/robustness
/// sweeps use this so one crashed cell becomes a graded report entry
/// (and a shrink candidate) rather than taking down the whole campaign.
///
/// Slots are in input order, and each slot depends only on its own
/// item, so the output is deterministic across `jobs` counts. The
/// worker's state is rebuilt through `init` after a panic (the job may
/// have torn it mid-unwind).
///
/// # Errors
///
/// The *outer* `Result` only fails if `init` or the labeler itself
/// panicked — item-level panics are settled into their slots.
pub fn map_parallel_settle<S, T, R, L, I, F>(
    jobs: usize,
    items: Vec<T>,
    labeler: L,
    init: I,
    f: F,
) -> Result<Vec<Result<R, PoolError>>, PoolError>
where
    T: Send,
    R: Send,
    L: Fn(usize, &T) -> String + Sync,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, T) -> R + Sync,
{
    let labeled: Vec<(String, T)> = items
        .into_iter()
        .enumerate()
        .map(|(i, t)| (labeler(i, &t), t))
        .collect();
    map_parallel_labeled(
        jobs,
        labeled,
        |_, (label, _)| label.clone(),
        &init,
        |state, i, (label, t)| match catch_unwind(AssertUnwindSafe(|| f(state, i, t))) {
            Ok(r) => Ok(r),
            Err(payload) => {
                // The panic may have torn the worker's state mid-unwind.
                *state = init();
                Err(PoolError::WorkerPanic {
                    label,
                    message: panic_message(payload),
                })
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = map_parallel(4, Vec::<i32>::new(), |_, x| x * 2).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_on_caller_thread() {
        let out = map_parallel(8, vec![21], |i, x| (i, x * 2)).unwrap();
        assert_eq!(out, vec![(0, 42)]);
    }

    #[test]
    fn more_items_than_workers_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 7, 100, 1000] {
            let out = map_parallel(jobs, items.clone(), |_, x| x * x).unwrap();
            assert_eq!(out, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn panicking_job_surfaces_as_error_not_poison() {
        let err = map_parallel(2, (0..16).collect::<Vec<i32>>(), |_, x| {
            assert!(x != 5, "boom on five");
            x
        })
        .unwrap_err();
        match err {
            PoolError::WorkerPanic { label, message } => {
                assert_eq!(label, "item 5");
                assert!(message.contains("boom on five"), "message: {message}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // The pool is per-call: a panicked run leaves nothing behind and
        // the very next call works.
        let ok = map_parallel(2, vec![1, 2, 3], |_, x| x + 1).unwrap();
        assert_eq!(ok, vec![2, 3, 4]);
    }

    #[test]
    fn panic_error_carries_cell_label_and_lowest_index_wins() {
        let items: Vec<(&str, u64)> = vec![("eua", 11), ("eua", 23), ("dasa", 11), ("dasa", 23)];
        for jobs in [1, 2, 4] {
            let err = map_parallel_labeled(
                jobs,
                items.clone(),
                |_, (policy, seed)| format!("policy {policy}, seed {seed}"),
                || (),
                |(), i, (policy, _)| {
                    assert!(i == 0 || policy != "dasa", "dasa cell crashed");
                    i
                },
            )
            .unwrap_err();
            match err {
                PoolError::WorkerPanic {
                    ref label,
                    ref message,
                } => {
                    assert_eq!(label, "policy dasa, seed 11", "jobs = {jobs}");
                    assert!(message.contains("dasa cell crashed"), "jobs = {jobs}");
                }
                ref other => panic!("expected WorkerPanic, got {other:?}"),
            }
            assert!(
                err.to_string().contains("policy dasa, seed 11"),
                "display must name the failing cell: {err}"
            );
        }
    }

    #[test]
    fn worker_local_state_is_constructed_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let out = map_parallel_with(
            3,
            (0..30).collect::<Vec<usize>>(),
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |seen, _, x| {
                *seen += 1;
                x
            },
        )
        .unwrap();
        assert_eq!(out, (0..30).collect::<Vec<usize>>());
        let constructed = inits.load(Ordering::SeqCst);
        assert!(
            (1..=3).contains(&constructed),
            "one state per worker, got {constructed}"
        );
    }

    #[test]
    fn settle_turns_panics_into_slots_without_losing_siblings() {
        let items: Vec<i32> = (0..16).collect();
        let mut expect: Vec<Result<i32, PoolError>> = items.iter().map(|&x| Ok(x * 2)).collect();
        expect[5] = Err(PoolError::WorkerPanic {
            label: "cell 5".to_string(),
            message: "boom on five".to_string(),
        });
        for jobs in [1, 2, 4] {
            let out = map_parallel_settle(
                jobs,
                items.clone(),
                |i, _| format!("cell {i}"),
                || (),
                |(), _, x| {
                    assert!(x != 5, "boom on five");
                    x * 2
                },
            )
            .unwrap();
            assert_eq!(out, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn settle_rebuilds_worker_state_after_a_panic() {
        // A panicking item must not leave its worker's accumulator torn
        // for the items that follow it on the same worker.
        let out = map_parallel_settle(
            1,
            (0..6).collect::<Vec<i32>>(),
            |i, _| format!("cell {i}"),
            || 0i32,
            |acc, _, x| {
                *acc += 1;
                assert!(x != 2, "tear");
                (*acc, x)
            },
        )
        .unwrap();
        // After the panic at x = 2 the state restarts from 0.
        assert_eq!(out[3], Ok((1, 3)));
        assert_eq!(out[4], Ok((2, 4)));
    }

    #[test]
    fn jobs_zero_falls_back_to_sequential() {
        let out = map_parallel(0, vec![1, 2, 3], |_, x| x * 10).unwrap();
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn resolve_jobs_prefers_explicit_over_env_and_hardware() {
        assert_eq!(resolve_jobs(Some(7)), 7);
        assert!(resolve_jobs(Some(0)) >= 1, "zero is ignored, not honored");
        assert!(resolve_jobs(None) >= 1);
    }
}
