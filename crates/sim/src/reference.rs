//! The pre-overhaul event loop, preserved verbatim as a differential
//! oracle.
//!
//! When the engine's hot core was rebuilt around the calendar queue and
//! the job arena (DESIGN.md §14), the old `Vec<LiveJob>` loop moved here
//! unchanged. `Engine::run_reference` and friends execute it end to end,
//! sharing the exact run preamble (`prepare_run`) with the production
//! path, so the two loops consume bit-identical prepared state and must
//! produce byte-identical certificates and equal outcomes. The
//! `engine_differential` suite in `eua-core` asserts exactly that across
//! scenarios × policies × fault plans.
//!
//! This module is an oracle, not a product surface: do not optimize it,
//! and change it only when the engine's *semantics* deliberately change
//! (in which case both loops move together, pinned by the suite).

use eua_platform::{Cycles, Frequency, SimTime, TimeDelta};
use eua_uam::generator::ArrivalPattern;
use eua_uam::ArrivalTrace;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::certificate::{ChargeKind, ChargeRecord, EventRecord, JobSnapshot, RunCertificate};
use crate::context::{JobView, SchedContext, SchedEvent};
use crate::engine::{prepare_run, Engine, Outcome, SimConfig};
use crate::error::SimError;
use crate::faults::{map_to_degraded, FaultPlan, FaultStats};
use crate::ids::{JobId, TaskId};
use crate::invariants::InvariantChecker;
use crate::job::{JobOutcome, JobRecord, LiveJob};
use crate::metrics::Metrics;
use crate::platform_view::Platform;
use crate::policy::SchedulerPolicy;
use crate::task::TaskSet;
use crate::trace::{ExecutionTrace, Segment, TraceEvent};

impl Engine {
    /// [`Engine::run`], executed by the reference (pre-overhaul) event
    /// loop. Kept for differential testing only.
    ///
    /// # Errors
    ///
    /// As [`Engine::run`].
    pub fn run_reference<P: SchedulerPolicy + ?Sized>(
        tasks: &TaskSet,
        patterns: &[ArrivalPattern],
        platform: &Platform,
        policy: &mut P,
        config: &SimConfig,
        seed: u64,
    ) -> Result<Outcome, SimError> {
        Self::run_with_faults_reference(
            tasks,
            patterns,
            platform,
            policy,
            config,
            seed,
            &FaultPlan::none(),
        )
    }

    /// [`Engine::run_with_faults`], executed by the reference event loop.
    ///
    /// # Errors
    ///
    /// As [`Engine::run_with_faults`].
    pub fn run_with_faults_reference<P: SchedulerPolicy + ?Sized>(
        tasks: &TaskSet,
        patterns: &[ArrivalPattern],
        platform: &Platform,
        policy: &mut P,
        config: &SimConfig,
        seed: u64,
        plan: &FaultPlan,
    ) -> Result<Outcome, SimError> {
        if patterns.len() != tasks.len() {
            return Err(SimError::PatternCountMismatch {
                tasks: tasks.len(),
                patterns: patterns.len(),
            });
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let traces: Vec<ArrivalTrace> = patterns
            .iter()
            .map(|p| p.generate(config.horizon(), &mut rng))
            .collect();
        run_core_reference(
            tasks, &traces, platform, policy, config, &mut rng, seed, plan,
        )
    }

    /// [`Engine::run_with_traces`], executed by the reference event loop.
    ///
    /// # Errors
    ///
    /// As [`Engine::run_with_traces`].
    pub fn run_with_traces_reference<P: SchedulerPolicy + ?Sized>(
        tasks: &TaskSet,
        traces: &[ArrivalTrace],
        platform: &Platform,
        policy: &mut P,
        config: &SimConfig,
        seed: u64,
    ) -> Result<Outcome, SimError> {
        Self::run_traces_with_faults_reference(
            tasks,
            traces,
            platform,
            policy,
            config,
            seed,
            &FaultPlan::none(),
        )
    }

    /// [`Engine::run_traces_with_faults`], executed by the reference
    /// event loop.
    ///
    /// # Errors
    ///
    /// As [`Engine::run_with_faults`].
    pub fn run_traces_with_faults_reference<P: SchedulerPolicy + ?Sized>(
        tasks: &TaskSet,
        traces: &[ArrivalTrace],
        platform: &Platform,
        policy: &mut P,
        config: &SimConfig,
        seed: u64,
        plan: &FaultPlan,
    ) -> Result<Outcome, SimError> {
        if traces.len() != tasks.len() {
            return Err(SimError::PatternCountMismatch {
                tasks: tasks.len(),
                patterns: traces.len(),
            });
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        run_core_reference(
            tasks, traces, platform, policy, config, &mut rng, seed, plan,
        )
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_core_reference<P: SchedulerPolicy + ?Sized>(
    tasks: &TaskSet,
    traces: &[ArrivalTrace],
    platform: &Platform,
    policy: &mut P,
    config: &SimConfig,
    rng: &mut SmallRng,
    seed: u64,
    plan: &FaultPlan,
) -> Result<Outcome, SimError> {
    let prep = prepare_run(tasks, traces, platform, policy, config, rng, seed, plan)?;
    let mut state = ReferenceState {
        tasks,
        platform,
        config,
        plan,
        horizon_end: prep.horizon_end,
        arrivals: prep.arrivals,
        demands: prep.demands,
        cursor: 0,
        next_job_id: 0,
        now: SimTime::ZERO,
        live: Vec::new(),
        running: None,
        last_freq: None,
        degraded: prep.degraded,
        policy_platform: prep.policy_platform,
        stuck_at: plan
            .dvs
            .stuck_after
            .map(|after| SimTime::ZERO.saturating_add(after)),
        stuck_freq: None,
        stats: prep.stats,
        metrics: Metrics::new(config.horizon(), tasks.len()),
        trace: config.record_trace().then(ExecutionTrace::new),
        records: config.record_jobs().then(Vec::new),
        cert: prep.cert,
        invariants: InvariantChecker::new(tasks.len()),
    };
    state.run_loop(policy)?;
    state.invariants.finish(state.metrics.energy);
    if let Some(cert) = state.cert.as_mut() {
        cert.final_energy = state.metrics.energy;
    }
    Ok(Outcome {
        metrics: state.metrics,
        trace: state.trace,
        jobs: state.records,
        certificate: state.cert,
        faults: state.stats,
    })
}

/// The pre-overhaul engine state: a flat `Vec<LiveJob>` scanned linearly,
/// with the per-event `Vec<JobView>` collect.
struct ReferenceState<'a> {
    tasks: &'a TaskSet,
    platform: &'a Platform,
    config: &'a SimConfig,
    plan: &'a FaultPlan,
    horizon_end: SimTime,
    arrivals: Vec<(SimTime, TaskId)>,
    demands: Vec<Cycles>,
    cursor: usize,
    next_job_id: u64,
    now: SimTime,
    live: Vec<LiveJob>,
    running: Option<JobId>,
    last_freq: Option<Frequency>,
    degraded: Option<Vec<Frequency>>,
    policy_platform: Option<Platform>,
    stuck_at: Option<SimTime>,
    stuck_freq: Option<Frequency>,
    stats: FaultStats,
    metrics: Metrics,
    trace: Option<ExecutionTrace>,
    records: Option<Vec<JobRecord>>,
    cert: Option<RunCertificate>,
    invariants: InvariantChecker,
}

impl ReferenceState<'_> {
    fn run_loop<P: SchedulerPolicy + ?Sized>(&mut self, policy: &mut P) -> Result<(), SimError> {
        let mut event = SchedEvent::Start;
        loop {
            // 1 + 2. Admit arrivals due now and raise the termination
            // exception for overdue jobs — repeated to a fixpoint because
            // a costly abort (fault plan) advances the clock, possibly
            // past further arrivals or termination times.
            loop {
                if self.admit_arrivals() && !matches!(event, SchedEvent::Completion(_)) {
                    event = SchedEvent::Arrival;
                }
                let before = self.now;
                if let Some(aborted) = self.abort_overdue() {
                    if !matches!(event, SchedEvent::Completion(_)) {
                        event = SchedEvent::Abort(aborted);
                    }
                }
                if self.now == before {
                    break;
                }
            }
            // 3. Horizon.
            if self.now >= self.horizon_end {
                break;
            }
            // 4. Fast-forward through idle gaps.
            if self.live.is_empty() {
                match self.arrivals.get(self.cursor) {
                    Some(&(t, _)) => {
                        self.advance_idle(t.min(self.horizon_end));
                        continue;
                    }
                    None => {
                        self.advance_idle(self.horizon_end);
                        break;
                    }
                }
            }
            // 5. Ask the policy. Under a degraded-frequency fault the
            // policy sees (and budgets against) only the surviving
            // frequencies.
            let views: Vec<JobView> = self.live.iter().map(job_view).collect();
            let decision = {
                let ctx = SchedContext {
                    now: self.now,
                    event,
                    jobs: &views,
                    tasks: self.tasks,
                    platform: self.policy_platform.as_ref().unwrap_or(self.platform),
                    running: self.running,
                    energy_used: self.metrics.energy,
                };
                policy.decide(&ctx)
            };
            // Certificate: every decision is recorded at its instant —
            // including ones later discarded by a costly-abort clock jump,
            // which were still valid when taken.
            if let Some(cert) = self.cert.as_mut() {
                cert.events.push(EventRecord {
                    at: self.now,
                    trigger: event,
                    ready: views.iter().map(JobSnapshot::from_view).collect(),
                    run: decision.run,
                    frequency: decision.frequency,
                    aborts: decision.abort.clone(),
                    explanation: policy.explain(),
                });
            }
            event = SchedEvent::Start; // consumed; will be overwritten below
            if let Some(aborted) = self.apply_policy_aborts(&decision)? {
                if !self.plan.timing.abort_cost.is_zero() {
                    // The costly abort handler advanced the clock, so the
                    // decision's timing assumptions are stale — re-decide.
                    event = SchedEvent::Abort(aborted);
                    continue;
                }
            }

            let Some(run_id) = decision.run else {
                // Idle until something happens.
                self.running = None;
                self.advance_idle(self.next_passive_event());
                continue;
            };
            if !self
                .platform
                .table()
                .as_slice()
                .contains(&decision.frequency)
            {
                return Err(SimError::UnknownFrequency {
                    mhz: decision.frequency.as_mhz(),
                });
            }
            let Some(job_idx) = self.live.iter().position(|j| j.id == run_id) else {
                return Err(SimError::UnknownJob { job: run_id });
            };
            let mut freq = decision.frequency;
            // DVS faults: remap onto the degraded set, then pin to the
            // stuck frequency once the generator fault has fired.
            if let Some(kept) = &self.degraded {
                let mapped = map_to_degraded(kept, freq);
                if mapped != freq {
                    self.stats.degraded_remaps += 1;
                    freq = mapped;
                }
            }
            if let Some(stuck_at) = self.stuck_at {
                if self.now >= stuck_at {
                    let pinned = *self.stuck_freq.get_or_insert(freq);
                    if pinned != freq {
                        self.stats.stuck_dispatches += 1;
                        freq = pinned;
                    }
                }
            }

            // 6. Context/frequency switch bookkeeping (and optional
            // overheads).
            let switching_job = self.running != Some(run_id);
            let switching_freq = self.last_freq.is_some() && self.last_freq != Some(freq);
            if let Some(old) = self.running {
                if switching_job {
                    self.metrics.context_switches += 1;
                    if self.live.iter().any(|j| j.id == old) {
                        self.metrics.preemptions += 1;
                    }
                }
            }
            let mut pause = TimeDelta::ZERO;
            if switching_job {
                pause += self.config.context_switch_overhead();
            }
            if switching_freq {
                pause += self.config.frequency_switch_overhead();
                let latency = self.plan.dvs.switch_latency_cycles;
                if latency > 0 {
                    // PLL relock modelled in cycles: billed as wall time
                    // at the target frequency.
                    pause += freq.execution_time(Cycles::new(latency));
                    self.stats.latency_switches += 1;
                }
            }
            if !pause.is_zero() {
                let target = self.now.saturating_add(pause);
                let stop = self.next_passive_event().min(target).max(self.now);
                let delta = stop - self.now;
                if !delta.is_zero() {
                    let cycles = freq.cycles_in(delta);
                    let charge = self.platform.energy().energy_for(cycles, freq);
                    self.invariants.energy_charge(charge);
                    self.metrics.energy += charge;
                    self.metrics.busy_time += delta;
                    self.metrics.add_residency(freq.as_mhz(), delta);
                    self.record_charge(ChargeKind::Switch, freq.as_mhz(), cycles, delta, charge);
                }
                self.invariants.clock_advance(self.now, stop);
                self.now = stop;
                if stop < target {
                    // Switch interrupted by an event; re-decide there.
                    continue;
                }
            }
            if self.last_freq != Some(freq) {
                if self.last_freq.is_some() {
                    self.metrics.frequency_changes += 1;
                }
                self.last_freq = Some(freq);
            }
            self.running = Some(run_id);

            // 7. Execute until the next event.
            let completion_at = {
                let job = &self.live[job_idx];
                self.now
                    .saturating_add(freq.execution_time(job.actual_remaining()))
            };
            self.invariants.executing(run_id);
            let next = self.next_passive_event().min(completion_at).max(self.now);
            let delta = next - self.now;
            let job = &mut self.live[job_idx];
            let cycles = freq.cycles_in(delta).min(job.actual_remaining());
            job.executed += cycles;
            let charge = self.platform.energy().energy_for(cycles, freq);
            self.invariants.energy_charge(charge);
            self.metrics.energy += charge;
            self.metrics.busy_time += delta;
            self.metrics.add_residency(freq.as_mhz(), delta);
            let completed = job.actual_remaining().is_zero();
            let (job_id, task_id) = (job.id, job.task);
            self.record_charge(ChargeKind::Execute, freq.as_mhz(), cycles, delta, charge);
            if let Some(trace) = self.trace.as_mut() {
                trace.push_segment(Segment {
                    job: job_id,
                    task: task_id,
                    start: self.now,
                    end: next,
                    frequency: freq,
                });
            }
            self.invariants.clock_advance(self.now, next);
            self.now = next;
            if completed {
                self.complete(job_idx);
                event = SchedEvent::Completion(job_id);
            }
        }
        // Anything still live at the horizon is unfinished.
        if let Some(records) = self.records.as_mut() {
            for job in &self.live {
                records.push(JobRecord {
                    id: job.id,
                    task: job.task,
                    arrival: job.arrival,
                    actual_demand: job.actual,
                    executed: job.executed,
                    outcome: JobOutcome::Unfinished,
                });
            }
        }
        Ok(())
    }

    /// Advances the clock through an idle gap, charging the configured
    /// idle power.
    fn advance_idle(&mut self, to: SimTime) {
        let delta = to.saturating_since(self.now);
        if !delta.is_zero() && self.config.idle_power() > 0.0 {
            let charge = self.config.idle_power() * delta.as_micros() as f64;
            self.invariants.energy_charge(charge);
            self.metrics.energy += charge;
            self.record_charge(ChargeKind::Idle, 0, Cycles::ZERO, delta, charge);
        }
        self.invariants.clock_advance(self.now, to);
        self.now = to;
    }

    /// Mirrors one `metrics.energy` charge into the certificate, when
    /// recording. Empty charges (no cycles, no time, no energy) are
    /// dropped to keep certificates minimal.
    fn record_charge(
        &mut self,
        kind: ChargeKind,
        frequency_mhz: u64,
        cycles: Cycles,
        delta: TimeDelta,
        energy: f64,
    ) {
        let Some(cert) = self.cert.as_mut() else {
            return;
        };
        if cycles.is_zero() && delta.is_zero() && energy == 0.0 {
            return;
        }
        cert.charges.push(ChargeRecord {
            at: self.now,
            kind,
            frequency_mhz,
            cycles,
            micros: delta.as_micros(),
            energy,
        });
    }

    /// The earliest upcoming event the engine controls: an arrival, a
    /// termination expiry, or the horizon itself. The linear termination
    /// scan is the point the calendar queue replaced.
    fn next_passive_event(&self) -> SimTime {
        let next_arrival = self
            .arrivals
            .get(self.cursor)
            .map_or(SimTime::MAX, |&(t, _)| t);
        let next_termination = self
            .live
            .iter()
            .map(|j| j.termination)
            .min()
            .unwrap_or(SimTime::MAX);
        next_arrival.min(next_termination).min(self.horizon_end)
    }

    // eua-lint: hot
    fn admit_arrivals(&mut self) -> bool {
        let mut any = false;
        while let Some(&(t, tid)) = self.arrivals.get(self.cursor) {
            // `t < now` happens only after a costly-abort clock jump —
            // those arrivals are admitted late rather than stranded.
            if t > self.now {
                break;
            }
            let actual = self.demands[self.cursor];
            self.cursor += 1;
            let task = self.tasks.task(tid);
            // Under injected UAM violations the declared bound no longer
            // holds by construction; check against the relaxed bound the
            // plan guarantees instead.
            self.invariants.arrival(
                tid.index(),
                t,
                self.plan
                    .relaxed_uam_bound(task.uam().max_arrivals(), task.uam().window()),
                task.uam().window(),
            );
            let job = LiveJob {
                id: JobId(self.next_job_id),
                task: tid,
                arrival: t,
                critical: t.saturating_add(task.critical_offset()),
                termination: t.saturating_add(task.termination_offset()),
                actual,
                allocation: task.allocation(),
                executed: Cycles::ZERO,
            };
            self.next_job_id += 1;
            let tm = &mut self.metrics.per_task[tid.index()];
            tm.arrived += 1;
            // Utility accounting is restricted to *observable* jobs —
            // those whose termination time falls within the horizon — so
            // slow-but-legal policies are not penalized for jobs still in
            // flight at the cutoff.
            if job.termination <= self.horizon_end {
                tm.observable += 1;
                tm.max_utility += task.tuf().max_utility();
                self.metrics.max_possible_utility += task.tuf().max_utility();
            }
            if let Some(trace) = self.trace.as_mut() {
                trace.push_event(TraceEvent::Arrival { at: t, job: job.id });
            }
            self.live.push(job);
            any = true;
        }
        any
    }

    /// Aborts every incomplete job whose termination time has been
    /// reached. Returns one of the aborted ids for event labelling.
    // eua-lint: hot
    fn abort_overdue(&mut self) -> Option<JobId> {
        let mut witness = None;
        let mut idx = 0;
        while idx < self.live.len() {
            if self.live[idx].termination <= self.now {
                let id = self.live[idx].id;
                self.finish_abort(idx, false);
                witness = Some(id);
            } else {
                idx += 1;
            }
        }
        witness
    }

    /// Applies `decision.abort`, returning the last aborted id (so the
    /// caller can re-decide after a costly-abort clock jump).
    fn apply_policy_aborts(
        &mut self,
        decision: &crate::policy::Decision,
    ) -> Result<Option<JobId>, SimError> {
        let mut last = None;
        for &id in &decision.abort {
            if decision.run == Some(id) {
                return Err(SimError::RunAbortConflict { job: id });
            }
            let Some(idx) = self.live.iter().position(|j| j.id == id) else {
                return Err(SimError::UnknownJob { job: id });
            };
            self.finish_abort(idx, true);
            last = Some(id);
        }
        Ok(last)
    }

    fn finish_abort(&mut self, idx: usize, by_policy: bool) {
        let job = self.live.remove(idx);
        self.invariants.job_aborted(job.id);
        let task = self.tasks.task(job.task);
        let tm = &mut self.metrics.per_task[job.task.index()];
        if by_policy {
            tm.aborted_by_policy += 1;
        } else {
            tm.aborted_by_termination += 1;
        }
        // An aborted job accrues nothing — unless progress-based accrual
        // is on, in which case it earns its executed fraction of the
        // current utility. Either way it can still satisfy its `ν`.
        let mut accrued = 0.0;
        if self.config.progress_accrual() && !job.actual.is_zero() {
            let progress = (job.executed.as_f64() / job.actual.as_f64()).clamp(0.0, 1.0);
            accrued = progress * task.tuf().utility(self.now.saturating_since(job.arrival));
        }
        if job.termination <= self.horizon_end {
            tm.utility += accrued;
            self.metrics.total_utility += accrued;
            if accrued + 1e-9 >= task.assurance().nu() * task.tuf().max_utility() {
                tm.assured += 1;
            }
        }
        if self.running == Some(job.id) {
            self.running = None;
        }
        if let Some(trace) = self.trace.as_mut() {
            trace.push_event(TraceEvent::Abort {
                at: self.now,
                job: job.id,
                by_policy,
            });
        }
        if let Some(records) = self.records.as_mut() {
            records.push(JobRecord {
                id: job.id,
                task: job.task,
                arrival: job.arrival,
                actual_demand: job.actual,
                executed: job.executed,
                outcome: JobOutcome::Aborted {
                    at: self.now,
                    by_policy,
                },
            });
        }
        // Fault plan: the abort handler itself takes wall time and energy
        // (billed at the last dispatched frequency, f_max before any
        // dispatch), advancing the clock past the abort instant.
        let cost = self.plan.timing.abort_cost;
        if !cost.is_zero() {
            let freq = self.last_freq.unwrap_or_else(|| self.platform.f_max());
            let stop = self.now.saturating_add(cost);
            let charge = self
                .platform
                .energy()
                .energy_for(freq.cycles_in(cost), freq);
            self.invariants.energy_charge(charge);
            self.metrics.energy += charge;
            self.metrics.busy_time += cost;
            self.metrics.add_residency(freq.as_mhz(), cost);
            self.record_charge(
                ChargeKind::AbortCost,
                freq.as_mhz(),
                freq.cycles_in(cost),
                cost,
                charge,
            );
            self.invariants.clock_advance(self.now, stop);
            self.now = stop;
            self.stats.costly_aborts += 1;
        }
    }

    fn complete(&mut self, idx: usize) {
        let job = self.live.remove(idx);
        let task = self.tasks.task(job.task);
        let sojourn = self.now - job.arrival;
        let utility = task.tuf().utility(sojourn);
        let tm = &mut self.metrics.per_task[job.task.index()];
        tm.completed += 1;
        if job.termination <= self.horizon_end {
            tm.utility += utility;
            self.metrics.total_utility += utility;
            let needed = task.assurance().nu() * task.tuf().max_utility();
            if utility + 1e-9 >= needed {
                tm.assured += 1;
            }
        }
        if self.now <= job.critical {
            tm.critical_met += 1;
        }
        let lateness = self.now.as_micros() as i64 - job.critical.as_micros() as i64;
        tm.max_lateness_us = tm.max_lateness_us.max(lateness);
        if tm.completed == 1 {
            // First completion defines the initial lateness rather than the
            // i64 default of 0 (which would hide early completions).
            tm.max_lateness_us = lateness;
        }
        if self.running == Some(job.id) {
            self.running = None;
        }
        if let Some(trace) = self.trace.as_mut() {
            trace.push_event(TraceEvent::Completion {
                at: self.now,
                job: job.id,
            });
        }
        if let Some(records) = self.records.as_mut() {
            records.push(JobRecord {
                id: job.id,
                task: job.task,
                arrival: job.arrival,
                actual_demand: job.actual,
                executed: job.executed,
                outcome: JobOutcome::Completed {
                    at: self.now,
                    utility,
                },
            });
        }
    }
}

fn job_view(job: &LiveJob) -> JobView {
    JobView {
        id: job.id,
        task: job.task,
        arrival: job.arrival,
        critical_time: job.critical,
        termination: job.termination,
        remaining: job.believed_remaining(),
        executed: job.executed,
    }
}
