//! Multi-seed replication: run the same configuration under several seeds
//! and aggregate the metrics, as the paper's plotted points do.

use eua_uam::generator::ArrivalPattern;

use crate::engine::{Engine, SimConfig};
use crate::error::SimError;
use crate::faults::FaultPlan;
use crate::metrics::Metrics;
use crate::platform_view::Platform;
use crate::policy::SchedulerPolicy;
use crate::task::TaskSet;

/// One replication's result.
#[derive(Debug, Clone, PartialEq)]
pub struct Replication {
    /// The seed that produced it.
    pub seed: u64,
    /// Its metrics.
    pub metrics: Metrics,
}

/// Aggregated replications of one `(workload, platform, policy)` triple.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// The per-seed runs.
    pub runs: Vec<Replication>,
}

impl Summary {
    /// Mean of an arbitrary metric across runs.
    pub fn mean_by(&self, f: impl Fn(&Metrics) -> f64) -> f64 {
        self.runs.iter().map(|r| f(&r.metrics)).sum::<f64>() / self.runs.len() as f64
    }

    /// Sample standard deviation of an arbitrary metric across runs
    /// (zero for a single run).
    pub fn std_by(&self, f: impl Fn(&Metrics) -> f64) -> f64 {
        if self.runs.len() < 2 {
            return 0.0;
        }
        let mean = self.mean_by(&f);
        let var = self
            .runs
            .iter()
            .map(|r| {
                let d = f(&r.metrics) - mean;
                d * d
            })
            .sum::<f64>()
            / (self.runs.len() - 1) as f64;
        var.sqrt()
    }

    /// Mean accrued utility.
    #[must_use]
    pub fn mean_utility(&self) -> f64 {
        self.mean_by(|m| m.total_utility)
    }

    /// Mean energy consumption.
    #[must_use]
    pub fn mean_energy(&self) -> f64 {
        self.mean_by(|m| m.energy)
    }

    /// Mean utility ratio (accrued / ceiling).
    #[must_use]
    pub fn mean_utility_ratio(&self) -> f64 {
        self.mean_by(Metrics::utility_ratio)
    }

    /// An approximate 95% confidence half-width for the mean of an
    /// arbitrary metric (`1.96·s/√n`; zero for fewer than two runs).
    pub fn ci95_by(&self, f: impl Fn(&Metrics) -> f64) -> f64 {
        if self.runs.len() < 2 {
            return 0.0;
        }
        1.96 * self.std_by(f) / (self.runs.len() as f64).sqrt()
    }
}

/// Runs `policy` under every seed in `seeds` and collects the metrics.
///
/// The policy's [`SchedulerPolicy::reset`] is invoked before each run, so
/// one policy value can serve all replications.
///
/// # Errors
///
/// Returns [`SimError::ZeroReplications`] for an empty seed list and
/// propagates any per-run error.
pub fn replicate<P: SchedulerPolicy + ?Sized>(
    tasks: &TaskSet,
    patterns: &[ArrivalPattern],
    platform: &Platform,
    policy: &mut P,
    config: &SimConfig,
    seeds: &[u64],
) -> Result<Summary, SimError> {
    replicate_with_faults(
        tasks,
        patterns,
        platform,
        policy,
        config,
        seeds,
        &FaultPlan::none(),
    )
}

/// [`replicate`] with a [`FaultPlan`] injected into every run (the same
/// plan under each seed; the injected fault *schedule* still varies per
/// seed through [`FaultPlan::rng`]).
///
/// # Errors
///
/// As [`replicate`], plus [`SimError::InvalidFaultPlan`].
pub fn replicate_with_faults<P: SchedulerPolicy + ?Sized>(
    tasks: &TaskSet,
    patterns: &[ArrivalPattern],
    platform: &Platform,
    policy: &mut P,
    config: &SimConfig,
    seeds: &[u64],
    plan: &FaultPlan,
) -> Result<Summary, SimError> {
    if seeds.is_empty() {
        return Err(SimError::ZeroReplications);
    }
    let mut runs = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let outcome =
            Engine::run_with_faults(tasks, patterns, platform, policy, config, seed, plan)?;
        runs.push(Replication {
            seed,
            metrics: outcome.metrics,
        });
    }
    Ok(Summary { runs })
}

/// [`replicate`] with seeds fanned out over a [`crate::pool`] worker pool.
///
/// Policies are constructed **per worker** through `policy_factory` (one
/// policy value per worker thread, reset by the engine before each seed),
/// so the factory must be `Sync` but the policy itself never crosses
/// threads. Runs are re-assembled in the order of `seeds`, and each run
/// is an independent deterministic simulation, so the returned
/// [`Summary`] is **bit-identical** to the sequential [`replicate`]'s —
/// `jobs = 1` short-circuits to the sequential code path outright.
///
/// # Errors
///
/// Returns [`SimError::ZeroReplications`] for an empty seed list, the
/// first (in seed order) per-run error, or [`SimError::Pool`] if a
/// worker panicked.
pub fn replicate_parallel<P, F>(
    tasks: &TaskSet,
    patterns: &[ArrivalPattern],
    platform: &Platform,
    policy_factory: F,
    config: &SimConfig,
    seeds: &[u64],
    jobs: usize,
) -> Result<Summary, SimError>
where
    P: SchedulerPolicy,
    F: Fn() -> P + Sync,
{
    replicate_parallel_with_faults(
        tasks,
        patterns,
        platform,
        policy_factory,
        config,
        seeds,
        jobs,
        &FaultPlan::none(),
    )
}

/// [`replicate_parallel`] with a [`FaultPlan`] injected into every run.
/// Fault schedules are seed-derived, so the result stays bit-identical
/// to the sequential [`replicate_with_faults`] for any `jobs`.
///
/// # Errors
///
/// As [`replicate_parallel`], plus [`SimError::InvalidFaultPlan`].
#[allow(clippy::too_many_arguments)]
pub fn replicate_parallel_with_faults<P, F>(
    tasks: &TaskSet,
    patterns: &[ArrivalPattern],
    platform: &Platform,
    policy_factory: F,
    config: &SimConfig,
    seeds: &[u64],
    jobs: usize,
    plan: &FaultPlan,
) -> Result<Summary, SimError>
where
    P: SchedulerPolicy,
    F: Fn() -> P + Sync,
{
    if seeds.is_empty() {
        return Err(SimError::ZeroReplications);
    }
    if jobs <= 1 {
        let mut policy = policy_factory();
        return replicate_with_faults(tasks, patterns, platform, &mut policy, config, seeds, plan);
    }
    let results = crate::pool::map_parallel_labeled(
        jobs,
        seeds.to_vec(),
        |_, seed| format!("seed {seed}"),
        &policy_factory,
        |policy, _, seed| {
            Engine::run_with_faults(tasks, patterns, platform, policy, config, seed, plan).map(
                |outcome| Replication {
                    seed,
                    metrics: outcome.metrics,
                },
            )
        },
    )?;
    let mut runs = Vec::with_capacity(results.len());
    for run in results {
        runs.push(run?);
    }
    Ok(Summary { runs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_platform::{EnergySetting, TimeDelta};
    use eua_tuf::Tuf;
    use eua_uam::demand::DemandModel;
    use eua_uam::{Assurance, UamSpec};

    use crate::policy::MaxSpeedEdf;
    use crate::task::Task;

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    fn setup() -> (TaskSet, Vec<ArrivalPattern>, Platform, SimConfig) {
        let task = Task::new(
            "t",
            Tuf::step(5.0, ms(10)).unwrap(),
            UamSpec::new(2, ms(10)).unwrap(),
            DemandModel::normal(100_000.0, 100_000.0).unwrap(),
            Assurance::new(1.0, 0.9).unwrap(),
        )
        .unwrap();
        let tasks = TaskSet::new(vec![task]).unwrap();
        let patterns =
            vec![ArrivalPattern::random_burst(UamSpec::new(2, ms(10)).unwrap()).unwrap()];
        (
            tasks,
            patterns,
            Platform::powernow(EnergySetting::e1()),
            SimConfig::new(ms(300)),
        )
    }

    #[test]
    fn replicate_aggregates_all_seeds() {
        let (tasks, patterns, platform, config) = setup();
        let mut policy = MaxSpeedEdf::new();
        let summary = replicate(
            &tasks,
            &patterns,
            &platform,
            &mut policy,
            &config,
            &[1, 2, 3, 4],
        )
        .unwrap();
        assert_eq!(summary.runs.len(), 4);
        assert!(summary.mean_utility() > 0.0);
        assert!(summary.mean_energy() > 0.0);
        assert!(summary.mean_utility_ratio() > 0.0);
        // Different seeds actually vary the workload.
        assert!(summary.std_by(|m| m.total_utility) > 0.0);
    }

    #[test]
    fn single_run_has_zero_std() {
        let (tasks, patterns, platform, config) = setup();
        let mut policy = MaxSpeedEdf::new();
        let summary = replicate(&tasks, &patterns, &platform, &mut policy, &config, &[7]).unwrap();
        assert_eq!(summary.std_by(|m| m.energy), 0.0);
        assert_eq!(summary.ci95_by(|m| m.energy), 0.0);
    }

    #[test]
    fn ci95_scales_with_std() {
        let (tasks, patterns, platform, config) = setup();
        let mut policy = MaxSpeedEdf::new();
        let summary = replicate(
            &tasks,
            &patterns,
            &platform,
            &mut policy,
            &config,
            &[1, 2, 3, 4],
        )
        .unwrap();
        let std = summary.std_by(|m| m.total_utility);
        let ci = summary.ci95_by(|m| m.total_utility);
        assert!((ci - 1.96 * std / 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_seed_list_rejected() {
        let (tasks, patterns, platform, config) = setup();
        let mut policy = MaxSpeedEdf::new();
        let err = replicate(&tasks, &patterns, &platform, &mut policy, &config, &[]).unwrap_err();
        assert_eq!(err, SimError::ZeroReplications);
    }

    #[test]
    fn parallel_replication_is_bit_identical_to_sequential() {
        let (tasks, patterns, platform, config) = setup();
        let seeds = [9u64, 1, 5, 3, 7, 2]; // deliberately unsorted
        let mut policy = MaxSpeedEdf::new();
        let sequential =
            replicate(&tasks, &patterns, &platform, &mut policy, &config, &seeds).unwrap();
        for jobs in [1, 2, 4, 16] {
            let parallel = replicate_parallel(
                &tasks,
                &patterns,
                &platform,
                MaxSpeedEdf::new,
                &config,
                &seeds,
                jobs,
            )
            .unwrap();
            assert_eq!(parallel, sequential, "jobs = {jobs}");
            assert_eq!(
                parallel.runs.iter().map(|r| r.seed).collect::<Vec<_>>(),
                seeds.to_vec(),
                "run order must follow the seed list, jobs = {jobs}"
            );
        }
    }

    #[test]
    fn faulted_parallel_replication_is_bit_identical_to_sequential() {
        let (tasks, patterns, platform, config) = setup();
        let plan = FaultPlan {
            uam: crate::faults::UamViolationFault {
                extra_per_window: 1,
                every_n_windows: 3,
            },
            demand: crate::faults::DemandFault {
                mean_factor: 1.5,
                spread: 0.2,
            },
            ..FaultPlan::none()
        };
        let seeds = [9u64, 1, 5, 3];
        let mut policy = MaxSpeedEdf::new();
        let sequential = replicate_with_faults(
            &tasks,
            &patterns,
            &platform,
            &mut policy,
            &config,
            &seeds,
            &plan,
        )
        .unwrap();
        for jobs in [1, 2, 4] {
            let parallel = replicate_parallel_with_faults(
                &tasks,
                &patterns,
                &platform,
                MaxSpeedEdf::new,
                &config,
                &seeds,
                jobs,
                &plan,
            )
            .unwrap();
            assert_eq!(parallel, sequential, "jobs = {jobs}");
        }
        // The fault plan actually changes the runs.
        let unfaulted = replicate(
            &tasks,
            &patterns,
            &platform,
            &mut MaxSpeedEdf::new(),
            &config,
            &seeds,
        )
        .unwrap();
        assert_ne!(sequential, unfaulted);
    }

    #[test]
    fn parallel_empty_seed_list_rejected() {
        let (tasks, patterns, platform, config) = setup();
        let err = replicate_parallel(
            &tasks,
            &patterns,
            &platform,
            MaxSpeedEdf::new,
            &config,
            &[],
            4,
        )
        .unwrap_err();
        assert_eq!(err, SimError::ZeroReplications);
    }
}
