//! Task definitions and task sets, with the §3.1 derived quantities.

use std::fmt;

use eua_platform::{Cycles, Frequency, TimeDelta};
use eua_tuf::Tuf;
use eua_uam::demand::DemandModel;
use eua_uam::{Assurance, UamSpec};

use crate::error::SimError;
use crate::ids::TaskId;

/// One task `T_i` of the paper's model: a TUF time constraint, a UAM
/// arrival descriptor `⟨a_i, P_i⟩`, a stochastic cycle demand `Y_i`, and a
/// statistical requirement `{ν_i, ρ_i}`.
///
/// Construction performs the paper's `offlineComputing` derivations that
/// depend only on the task (the UER-optimal frequency also needs the
/// platform and is computed by the policies):
///
/// * the **cycle allocation** `c_i = E(Y_i) + sqrt(ρ_i/(1−ρ_i)·Var(Y_i))`
///   (Chebyshev/Cantelli, §3.1), and
/// * the **critical time** `D_i` with `ν_i = U_i(D_i)/U_i^max`.
///
/// # Example
///
/// ```
/// use eua_platform::TimeDelta;
/// use eua_sim::Task;
/// use eua_tuf::Tuf;
/// use eua_uam::demand::DemandModel;
/// use eua_uam::{Assurance, UamSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = TimeDelta::from_millis(20);
/// let task = Task::new(
///     "track",
///     Tuf::linear(60.0, p)?,
///     UamSpec::new(2, p)?,
///     DemandModel::normal(100_000.0, 100_000.0)?,
///     Assurance::new(0.3, 0.9)?,
/// )?;
/// // ν = 0.3 on a linear TUF ⇒ D = 0.7·P = 14 ms.
/// assert_eq!(task.critical_offset(), TimeDelta::from_millis(14));
/// assert!(task.allocation().get() > 100_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    name: String,
    tuf: Tuf,
    uam: UamSpec,
    demand: DemandModel,
    assurance: Assurance,
    allocation: Cycles,
    critical_offset: TimeDelta,
}

impl Task {
    /// Creates a task and derives its cycle allocation and critical time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoCriticalTime`] if the TUF cannot meet the
    /// assurance fraction `ν`, and [`SimError::Task`] if the Chebyshev
    /// allocation is invalid for `ρ` (cannot happen for a validated
    /// [`Assurance`]).
    pub fn new(
        name: impl Into<String>,
        tuf: Tuf,
        uam: UamSpec,
        demand: DemandModel,
        assurance: Assurance,
    ) -> Result<Self, SimError> {
        let name = name.into();
        let critical_offset = tuf
            .critical_time(assurance.nu())
            .ok_or_else(|| SimError::NoCriticalTime { task: name.clone() })?;
        if critical_offset.is_zero() {
            return Err(SimError::NoCriticalTime { task: name });
        }
        let allocation = demand.chebyshev_allocation(assurance.rho())?;
        Ok(Task {
            name,
            tuf,
            uam,
            demand,
            assurance,
            allocation,
            critical_offset,
        })
    }

    /// The task's human-readable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task's time/utility function (shared by all its jobs).
    #[must_use]
    pub fn tuf(&self) -> &Tuf {
        &self.tuf
    }

    /// The `⟨a, P⟩` arrival descriptor.
    #[must_use]
    pub fn uam(&self) -> &UamSpec {
        &self.uam
    }

    /// The stochastic cycle-demand model `Y_i`.
    #[must_use]
    pub fn demand(&self) -> &DemandModel {
        &self.demand
    }

    /// The statistical requirement `{ν, ρ}`.
    #[must_use]
    pub fn assurance(&self) -> &Assurance {
        &self.assurance
    }

    /// The Chebyshev cycle allocation `c_i` each job is planned with.
    #[must_use]
    pub fn allocation(&self) -> Cycles {
        self.allocation
    }

    /// The critical-time offset `D_i` relative to a job's arrival.
    #[must_use]
    pub fn critical_offset(&self) -> TimeDelta {
        self.critical_offset
    }

    /// The termination offset `X − I` (from the TUF).
    #[must_use]
    pub fn termination_offset(&self) -> TimeDelta {
        self.tuf.termination()
    }

    /// The per-window worst-case cycle demand `C_i = a_i·c_i` of
    /// Theorem 1.
    #[must_use]
    pub fn window_demand(&self) -> Cycles {
        self.allocation
            .checked_mul(u64::from(self.uam.max_arrivals()))
            .unwrap_or(Cycles::new(u64::MAX))
    }

    /// The task's contribution `C_i / D_i` to the system load, in
    /// cycles/µs.
    #[must_use]
    pub fn demand_rate(&self) -> f64 {
        self.window_demand().as_f64() / self.critical_offset.as_micros() as f64
    }

    /// A copy of this task with its demand scaled by `k` (mean by `k`,
    /// variance by `k²`), re-deriving the allocation — the inner step of
    /// the paper's load-scaling procedure.
    ///
    /// # Errors
    ///
    /// Propagates [`Task::new`] errors.
    pub fn with_scaled_demand(&self, k: f64) -> Result<Self, SimError> {
        Task::new(
            self.name.clone(),
            self.tuf.clone(),
            self.uam,
            self.demand.scaled(k),
            self.assurance,
        )
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} {} c={} D={}",
            self.name, self.uam, self.tuf, self.allocation, self.critical_offset
        )
    }
}

/// An immutable set of tasks, indexed by [`TaskId`].
///
/// # Example
///
/// ```
/// use eua_platform::{Frequency, TimeDelta};
/// use eua_sim::TaskSet;
/// # use eua_sim::Task;
/// # use eua_tuf::Tuf;
/// # use eua_uam::demand::DemandModel;
/// # use eua_uam::{Assurance, UamSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let p = TimeDelta::from_millis(10);
/// # let task = Task::new(
/// #     "t", Tuf::step(1.0, p)?, UamSpec::periodic(p)?,
/// #     DemandModel::deterministic(100_000.0)?, Assurance::new(1.0, 0.5)?,
/// # )?;
/// let set = TaskSet::new(vec![task])?;
/// // System load ρ = (1/f_m)·Σ C_i/D_i (paper §5).
/// let load = set.system_load(Frequency::from_mhz(100));
/// assert!((load - 0.1).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Creates a task set.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyTaskSet`] if `tasks` is empty.
    pub fn new(tasks: Vec<Task>) -> Result<Self, SimError> {
        if tasks.is_empty() {
            return Err(SimError::EmptyTaskSet);
        }
        Ok(TaskSet { tasks })
    }

    /// Number of tasks `n`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `false` — empty sets cannot be constructed — provided alongside
    /// [`TaskSet::len`] for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range; ids originate from this set.
    #[must_use]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Iterates over `(TaskId, &Task)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> + '_ {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// The tasks as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Task] {
        &self.tasks
    }

    /// The system load `ρ = (1/f_m)·Σ_i C_i/D_i` used throughout §5.
    #[must_use]
    pub fn system_load(&self, f_max: Frequency) -> f64 {
        self.tasks.iter().map(Task::demand_rate).sum::<f64>() / f_max.as_f64()
    }

    /// Rescales every task's demand by `k`; see
    /// [`Task::with_scaled_demand`].
    ///
    /// # Errors
    ///
    /// Propagates task re-derivation errors.
    pub fn with_scaled_demand(&self, k: f64) -> Result<Self, SimError> {
        let tasks = self
            .tasks
            .iter()
            .map(|t| t.with_scaled_demand(k))
            .collect::<Result<Vec<_>, _>>()?;
        TaskSet::new(tasks)
    }

    /// Scales demands so that [`TaskSet::system_load`] equals `target`
    /// (paper §5: "k is chosen such that the system load reaches a desired
    /// value").
    ///
    /// # Errors
    ///
    /// Propagates task re-derivation errors.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not positive and finite.
    pub fn scaled_to_load(&self, target: f64, f_max: Frequency) -> Result<Self, SimError> {
        assert!(
            target.is_finite() && target > 0.0,
            "target load must be positive"
        );
        // c_i(k) is affine-but-not-linear in k only through Chebyshev
        // rounding, so one proportional step converges to well under the
        // per-cycle resolution; iterate twice to absorb the rounding.
        let mut set = self.clone();
        for _ in 0..3 {
            let load = set.system_load(f_max);
            if (load - target).abs() / target < 1e-6 {
                break;
            }
            let k = target / load;
            set = set.with_scaled_demand(k)?;
        }
        // Guard: the two-pass scaling must land close to the target.
        debug_assert!(
            (set.system_load(f_max) - target).abs() / target < 1e-2,
            "load scaling failed to converge: wanted {target}, got {}",
            set.system_load(f_max)
        );
        Ok(set)
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = (TaskId, &'a Task);
    type IntoIter = Box<dyn Iterator<Item = (TaskId, &'a Task)> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    fn step_task(name: &str, p_ms: u64, mean: f64) -> Task {
        Task::new(
            name,
            Tuf::step(10.0, ms(p_ms)).unwrap(),
            UamSpec::periodic(ms(p_ms)).unwrap(),
            DemandModel::deterministic(mean).unwrap(),
            Assurance::new(1.0, 0.5).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn derives_critical_time_from_nu() {
        let p = ms(10);
        let t = Task::new(
            "lin",
            Tuf::linear(100.0, p).unwrap(),
            UamSpec::periodic(p).unwrap(),
            DemandModel::deterministic(1_000.0).unwrap(),
            Assurance::new(0.4, 0.5).unwrap(),
        )
        .unwrap();
        assert_eq!(t.critical_offset(), TimeDelta::from_micros(6_000));
        assert_eq!(t.termination_offset(), p);
    }

    #[test]
    fn chebyshev_allocation_exceeds_mean_for_positive_rho() {
        let p = ms(10);
        let t = Task::new(
            "n",
            Tuf::step(1.0, p).unwrap(),
            UamSpec::periodic(p).unwrap(),
            DemandModel::normal(10_000.0, 10_000.0).unwrap(),
            Assurance::new(1.0, 0.96).unwrap(),
        )
        .unwrap();
        // c = 10000 + sqrt(24 · 10000) ≈ 10489.9 → 10490.
        assert_eq!(t.allocation().get(), 10_490);
    }

    #[test]
    fn window_demand_multiplies_by_a() {
        let p = ms(10);
        let t = Task::new(
            "b",
            Tuf::step(1.0, p).unwrap(),
            UamSpec::new(3, p).unwrap(),
            DemandModel::deterministic(5_000.0).unwrap(),
            Assurance::new(1.0, 0.5).unwrap(),
        )
        .unwrap();
        assert_eq!(t.window_demand().get(), 15_000);
        assert!((t.demand_rate() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_critical_time_is_rejected() {
        // ν = 1 on an exponential TUF: only t = 0 attains full utility.
        let r = Task::new(
            "exp",
            Tuf::exponential(1.0, ms(1), ms(10)).unwrap(),
            UamSpec::periodic(ms(10)).unwrap(),
            DemandModel::deterministic(1.0).unwrap(),
            Assurance::new(1.0, 0.5).unwrap(),
        );
        assert!(matches!(r, Err(SimError::NoCriticalTime { .. })));
    }

    #[test]
    fn system_load_sums_demand_rates() {
        // Two tasks, each C/D = 100k cycles / 10 ms = 10 cycles/µs.
        let set = TaskSet::new(vec![
            step_task("a", 10, 100_000.0),
            step_task("b", 10, 100_000.0),
        ])
        .unwrap();
        let load = set.system_load(Frequency::from_mhz(100));
        assert!((load - 0.2).abs() < 1e-9);
    }

    #[test]
    fn scaled_to_load_hits_target() {
        let set = TaskSet::new(vec![
            step_task("a", 10, 100_000.0),
            step_task("b", 25, 400_000.0),
            step_task("c", 50, 1_000_000.0),
        ])
        .unwrap();
        for target in [0.2, 0.5, 1.0, 1.5, 1.8] {
            let scaled = set
                .scaled_to_load(target, Frequency::from_mhz(100))
                .unwrap();
            let got = scaled.system_load(Frequency::from_mhz(100));
            assert!(
                (got - target).abs() / target < 1e-2,
                "target {target}, got {got}"
            );
        }
    }

    #[test]
    fn scaling_preserves_cv_for_normal_demands() {
        let p = ms(10);
        let t = Task::new(
            "n",
            Tuf::step(1.0, p).unwrap(),
            UamSpec::periodic(p).unwrap(),
            DemandModel::normal(10_000.0, 10_000.0).unwrap(),
            Assurance::new(1.0, 0.9).unwrap(),
        )
        .unwrap();
        let scaled = t.with_scaled_demand(4.0).unwrap();
        assert_eq!(scaled.demand().mean(), 40_000.0);
        assert_eq!(scaled.demand().variance(), 160_000.0);
        // CV falls by 1/√k relative scaling of std/mean: std scales by k,
        // so std/mean is constant.
        let cv0 = t.demand().variance().sqrt() / t.demand().mean();
        let cv1 = scaled.demand().variance().sqrt() / scaled.demand().mean();
        assert!((cv0 - cv1).abs() < 1e-12);
    }

    #[test]
    fn empty_task_set_rejected() {
        assert_eq!(TaskSet::new(vec![]).unwrap_err(), SimError::EmptyTaskSet);
    }

    #[test]
    fn iteration_yields_stable_ids() {
        let set = TaskSet::new(vec![
            step_task("a", 10, 1_000.0),
            step_task("b", 20, 1_000.0),
        ])
        .unwrap();
        let names: Vec<(usize, String)> = set
            .iter()
            .map(|(id, t)| (id.index(), t.name().to_string()))
            .collect();
        assert_eq!(names, vec![(0, "a".to_string()), (1, "b".to_string())]);
        assert_eq!(set.task(TaskId(1)).name(), "b");
    }
}
