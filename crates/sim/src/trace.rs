//! Optional execution traces for debugging and property checking.
//!
//! Traces make schedules *inspectable*: the Theorem 2 test ("a schedule
//! produced by EDF is also produced by EUA\*") compares two policies'
//! [`ExecutionTrace::job_sequence`] directly.

use std::fmt;

use eua_platform::{Frequency, SimTime, TimeDelta};

use crate::ids::{JobId, TaskId};

/// A maximal interval during which one job ran at one frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// The executing job.
    pub job: JobId,
    /// Its task.
    pub task: TaskId,
    /// Interval start.
    pub start: SimTime,
    /// Interval end (exclusive).
    pub end: SimTime,
    /// The clock frequency during the interval.
    pub frequency: Frequency,
}

impl Segment {
    /// The segment's length.
    #[must_use]
    pub fn duration(&self) -> TimeDelta {
        self.end - self.start
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}..{}) {} @ {}",
            self.start, self.end, self.job, self.frequency
        )
    }
}

/// A notable event in the execution history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A job arrived.
    Arrival {
        /// When.
        at: SimTime,
        /// Which job.
        job: JobId,
    },
    /// A job completed.
    Completion {
        /// When.
        at: SimTime,
        /// Which job.
        job: JobId,
    },
    /// A job was aborted.
    Abort {
        /// When.
        at: SimTime,
        /// Which job.
        job: JobId,
        /// `true` if the policy (rather than the termination exception)
        /// requested it.
        by_policy: bool,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    #[must_use]
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::Arrival { at, .. }
            | TraceEvent::Completion { at, .. }
            | TraceEvent::Abort { at, .. } => at,
        }
    }
}

/// The complete execution history of one run (enabled via
/// [`crate::SimConfig::record_trace`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecutionTrace {
    segments: Vec<Segment>,
    events: Vec<TraceEvent>,
}

impl ExecutionTrace {
    pub(crate) fn new() -> Self {
        ExecutionTrace::default()
    }

    pub(crate) fn push_segment(&mut self, seg: Segment) {
        if seg.start == seg.end {
            return;
        }
        // Merge with the previous segment when the same job continues at
        // the same frequency.
        if let Some(last) = self.segments.last_mut() {
            if last.job == seg.job && last.frequency == seg.frequency && last.end == seg.start {
                last.end = seg.end;
                return;
            }
        }
        self.segments.push(seg);
    }

    pub(crate) fn push_event(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// The execution segments, in time order.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The recorded events, in time order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The sequence of jobs in execution order, adjacent repeats collapsed —
    /// the schedule's "shape", independent of speed.
    #[must_use]
    pub fn job_sequence(&self) -> Vec<JobId> {
        let mut seq = Vec::new();
        for s in &self.segments {
            if seq.last() != Some(&s.job) {
                seq.push(s.job);
            }
        }
        seq
    }

    /// Total time covered by execution segments.
    #[must_use]
    pub fn busy_time(&self) -> TimeDelta {
        self.segments.iter().map(Segment::duration).sum()
    }

    /// `true` if no two segments overlap (a uniprocessor invariant).
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.segments.windows(2).all(|w| w[0].end <= w[1].start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(job: u64, start: u64, end: u64, mhz: u64) -> Segment {
        Segment {
            job: JobId(job),
            task: TaskId(0),
            start: SimTime::from_micros(start),
            end: SimTime::from_micros(end),
            frequency: Frequency::from_mhz(mhz),
        }
    }

    #[test]
    fn segments_merge_when_contiguous() {
        let mut t = ExecutionTrace::new();
        t.push_segment(seg(1, 0, 10, 100));
        t.push_segment(seg(1, 10, 20, 100));
        assert_eq!(t.segments().len(), 1);
        assert_eq!(t.segments()[0].duration(), TimeDelta::from_micros(20));
    }

    #[test]
    fn segments_do_not_merge_across_frequency_changes() {
        let mut t = ExecutionTrace::new();
        t.push_segment(seg(1, 0, 10, 100));
        t.push_segment(seg(1, 10, 20, 55));
        assert_eq!(t.segments().len(), 2);
    }

    #[test]
    fn zero_length_segments_dropped() {
        let mut t = ExecutionTrace::new();
        t.push_segment(seg(1, 5, 5, 100));
        assert!(t.segments().is_empty());
    }

    #[test]
    fn job_sequence_collapses_repeats() {
        let mut t = ExecutionTrace::new();
        t.push_segment(seg(1, 0, 10, 100));
        t.push_segment(seg(2, 10, 15, 55));
        t.push_segment(seg(2, 15, 18, 100));
        t.push_segment(seg(1, 18, 30, 100));
        assert_eq!(t.job_sequence(), vec![JobId(1), JobId(2), JobId(1)]);
        assert_eq!(t.busy_time(), TimeDelta::from_micros(30));
        assert!(t.is_serial());
    }

    #[test]
    fn event_timestamps() {
        let e = TraceEvent::Abort {
            at: SimTime::from_micros(9),
            job: JobId(1),
            by_policy: true,
        };
        assert_eq!(e.at(), SimTime::from_micros(9));
    }

    #[test]
    fn overlap_detection() {
        let mut t = ExecutionTrace::new();
        t.push_segment(seg(1, 0, 10, 100));
        t.push_segment(seg(2, 5, 15, 100));
        assert!(!t.is_serial());
    }
}
