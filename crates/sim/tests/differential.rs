#![allow(clippy::expect_used)] // test/demo code: panicking on bad setup is the point

//! Differential testing: a deliberately naive microsecond-stepped
//! reference simulator, compared tick-for-tick against the event-driven
//! engine on randomized (but deterministic-demand) workloads.
//!
//! The reference implements the same semantics by brute force — admit
//! arrivals, raise termination exceptions, re-decide EDF on events, then
//! execute one microsecond at a time — so any divergence in utility,
//! energy, busy time, or job counts exposes an engine bug in event
//! scheduling, rounding, or accounting.

use eua_platform::{EnergySetting, SimTime, TimeDelta};
use eua_sim::policy::MaxSpeedEdf;
use eua_sim::{Engine, Platform, SimConfig, Task, TaskSet};
use eua_tuf::Tuf;
use eua_uam::demand::DemandModel;
use eua_uam::{ArrivalTrace, Assurance, UamSpec};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RefJob {
    task: usize,
    arrival: u64,
    critical: u64,
    termination: u64,
    remaining: u64,
    done: bool,
}

#[derive(Debug, Default, PartialEq)]
struct RefOutcome {
    utility_milli: i64,
    energy_milli: i64,
    busy_us: u64,
    completed: u64,
    aborted: u64,
}

/// Microsecond-stepped reference run of earliest-critical-time-first at
/// `f_m`, mirroring the engine's published semantics.
fn reference_run(
    tasks: &TaskSet,
    traces: &[Vec<u64>],
    platform: &Platform,
    horizon_us: u64,
) -> RefOutcome {
    let f = platform.f_max();
    let speed = f.as_mhz();
    let per_cycle = platform.energy().energy_per_cycle(f);
    let mut out = RefOutcome::default();
    let mut live: Vec<RefJob> = Vec::new();
    let mut cursors = vec![0usize; traces.len()];
    let mut running: Option<usize> = None; // index into live
    let mut utility = 0.0f64;
    let mut energy = 0.0f64;

    for t in 0..horizon_us {
        let mut event = t == 0;
        // Admit arrivals at `t` (task order, mirroring the engine's stable
        // sort by (time, task)).
        for (task_idx, trace) in traces.iter().enumerate() {
            while cursors[task_idx] < trace.len() && trace[cursors[task_idx]] == t {
                let task = tasks.task(eua_sim::TaskId(task_idx));
                live.push(RefJob {
                    task: task_idx,
                    arrival: t,
                    critical: t + task.critical_offset().as_micros(),
                    termination: t + task.termination_offset().as_micros(),
                    remaining: task.demand().mean().round() as u64,
                    done: false,
                });
                cursors[task_idx] += 1;
                event = true;
            }
        }
        // Termination exceptions.
        let before = live.len();
        live.retain(|j| {
            if !j.done && j.termination <= t {
                out.aborted += 1;
                false
            } else {
                true
            }
        });
        if live.len() != before {
            event = true;
            running = None; // indices shifted; re-decide below anyway
        }
        // Re-decide on any event: earliest critical time, ties by arrival
        // order (which equals id order in the engine).
        if event || running.is_none() {
            running = live
                .iter()
                .enumerate()
                .min_by_key(|(i, j)| (j.critical, *i))
                .map(|(i, _)| i);
        }
        // Execute one microsecond.
        if let Some(idx) = running {
            let job = &mut live[idx];
            let exec = job.remaining.min(speed);
            job.remaining -= exec;
            energy += exec as f64 * per_cycle;
            out.busy_us += 1;
            if job.remaining == 0 {
                // Completion is observed at the *end* of this microsecond.
                let sojourn = TimeDelta::from_micros(t + 1 - job.arrival);
                let task = tasks.task(eua_sim::TaskId(job.task));
                if job.termination <= horizon_us {
                    utility += task.tuf().utility(sojourn);
                }
                out.completed += 1;
                live.remove(idx);
                running = None;
            }
        }
    }
    out.utility_milli = (utility * 1_000.0).round() as i64;
    out.energy_milli = (energy * 1_000.0).round() as i64;
    out
}

fn engine_outcome(
    tasks: &TaskSet,
    traces: &[Vec<u64>],
    platform: &Platform,
    horizon_us: u64,
) -> RefOutcome {
    let arrival_traces: Vec<ArrivalTrace> = traces
        .iter()
        .map(|t| ArrivalTrace::from_times(t.iter().map(|&u| SimTime::from_micros(u))))
        .collect();
    let config = SimConfig::new(TimeDelta::from_micros(horizon_us));
    let m = Engine::run_with_traces(
        tasks,
        &arrival_traces,
        platform,
        &mut MaxSpeedEdf::new(),
        &config,
        1,
    )
    .expect("engine run")
    .metrics;
    RefOutcome {
        utility_milli: (m.total_utility * 1_000.0).round() as i64,
        energy_milli: (m.energy * 1_000.0).round() as i64,
        busy_us: m.busy_time.as_micros(),
        completed: m.jobs_completed(),
        aborted: m.jobs_aborted(),
    }
}

#[derive(Debug, Clone)]
struct RefTaskParams {
    window_us: u64,
    cycles: u64,
    umax: f64,
    step: bool,
    arrivals: Vec<u64>,
}

fn arb_ref_task() -> impl Strategy<Value = RefTaskParams> {
    (200u64..5_000, 1u64..400_000, 1.0f64..50.0, any::<bool>()).prop_flat_map(
        |(window_us, cycles, umax, step)| {
            // Arrivals respecting ⟨1, window⟩: cumulative gaps ≥ window.
            proptest::collection::vec(0u64..window_us, 0..8).prop_map(move |extras| {
                let mut arrivals = Vec::new();
                let mut t = extras.first().copied().unwrap_or(0);
                for &e in &extras {
                    arrivals.push(t);
                    t += window_us + e;
                }
                RefTaskParams {
                    window_us,
                    cycles,
                    umax,
                    step,
                    arrivals,
                }
            })
        },
    )
}

fn build(params: &[RefTaskParams]) -> (TaskSet, Vec<Vec<u64>>) {
    let mut tasks = Vec::new();
    let mut traces = Vec::new();
    for (i, p) in params.iter().enumerate() {
        let window = TimeDelta::from_micros(p.window_us);
        let tuf = if p.step {
            Tuf::step(p.umax, window).expect("valid")
        } else {
            Tuf::linear(p.umax, window).expect("valid")
        };
        // ν = 0 keeps D = X so the reference's EDF key equals the
        // engine's for both shapes.
        tasks.push(
            Task::new(
                format!("t{i}"),
                tuf,
                UamSpec::periodic(window).expect("valid"),
                DemandModel::deterministic(p.cycles as f64).expect("valid"),
                Assurance::new(0.0, 0.5).expect("valid"),
            )
            .expect("valid"),
        );
        traces.push(p.arrivals.clone());
    }
    (TaskSet::new(tasks).expect("non-empty"), traces)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn event_engine_matches_tick_reference(
        params in proptest::collection::vec(arb_ref_task(), 1..4),
        horizon_ms in 5u64..40,
    ) {
        prop_assume!(params.iter().any(|p| !p.arrivals.is_empty()));
        let (tasks, traces) = build(&params);
        let platform = Platform::powernow(EnergySetting::e1());
        let horizon_us = horizon_ms * 1_000;
        let reference = reference_run(&tasks, &traces, &platform, horizon_us);
        let engine = engine_outcome(&tasks, &traces, &platform, horizon_us);
        prop_assert_eq!(
            &engine, &reference,
            "divergence on {:?}", params
        );
    }
}

#[test]
fn known_scenario_matches_by_hand() {
    // One task: 250k cycles per job, 10 ms window, arrivals at 0 and 10 ms,
    // horizon 25 ms. Each job: 2.5 ms at 100 MHz.
    let params = [RefTaskParams {
        window_us: 10_000,
        cycles: 250_000,
        umax: 8.0,
        step: true,
        arrivals: vec![0, 10_000],
    }];
    let (tasks, traces) = build(&params);
    let platform = Platform::powernow(EnergySetting::e1());
    let reference = reference_run(&tasks, &traces, &platform, 25_000);
    let engine = engine_outcome(&tasks, &traces, &platform, 25_000);
    assert_eq!(engine, reference);
    assert_eq!(engine.completed, 2);
    assert_eq!(engine.busy_us, 5_000);
    assert_eq!(engine.utility_milli, 16_000);
}
