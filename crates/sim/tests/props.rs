#![allow(clippy::expect_used)] // test/demo code: panicking on bad setup is the point

//! Property-based tests of simulator invariants: whatever the workload,
//! the engine conserves time, never over-accrues utility, keeps the
//! uniprocessor serial, and is deterministic per seed.

use eua_platform::{EnergySetting, TimeDelta};
use eua_sim::policy::MaxSpeedEdf;
use eua_sim::{Engine, Platform, SimConfig, Task, TaskSet};
use eua_tuf::Tuf;
use eua_uam::demand::DemandModel;
use eua_uam::generator::ArrivalPattern;
use eua_uam::{Assurance, UamSpec};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct TaskParams {
    window_us: u64,
    a: u32,
    mean_cycles: f64,
    umax: f64,
    step: bool,
    nu_step: bool,
    rho: f64,
}

fn arb_task_params() -> impl Strategy<Value = TaskParams> {
    (
        1_000u64..200_000,
        1u32..4,
        1_000.0f64..2_000_000.0,
        1.0f64..100.0,
        any::<bool>(),
        any::<bool>(),
        0.0f64..0.99,
    )
        .prop_map(
            |(window_us, a, mean_cycles, umax, step, nu_step, rho)| TaskParams {
                window_us,
                a,
                mean_cycles,
                umax,
                step,
                nu_step,
                rho,
            },
        )
}

fn build(params: &[TaskParams]) -> (TaskSet, Vec<ArrivalPattern>) {
    let mut tasks = Vec::new();
    let mut patterns = Vec::new();
    for (i, p) in params.iter().enumerate() {
        let window = TimeDelta::from_micros(p.window_us);
        let tuf = if p.step {
            Tuf::step(p.umax, window).expect("valid")
        } else {
            Tuf::linear(p.umax, window).expect("valid")
        };
        let nu = if p.step {
            if p.nu_step {
                1.0
            } else {
                0.0
            }
        } else {
            0.3
        };
        let spec = UamSpec::new(p.a, window).expect("valid");
        let task = Task::new(
            format!("t{i}"),
            tuf,
            spec,
            DemandModel::normal(p.mean_cycles, p.mean_cycles).expect("valid"),
            Assurance::new(nu, p.rho).expect("valid"),
        );
        // ν = 0 on a step TUF has D = X which is fine; skip tasks whose
        // derivation legitimately fails (e.g. ν = 1 would need D > 0 — it
        // always holds for steps, so this is defensive).
        let Ok(task) = task else { continue };
        tasks.push(task);
        patterns.push(ArrivalPattern::random_burst(spec).expect("valid"));
    }
    if tasks.is_empty() {
        let window = TimeDelta::from_millis(10);
        let spec = UamSpec::periodic(window).expect("valid");
        tasks.push(
            Task::new(
                "fallback",
                Tuf::step(1.0, window).expect("valid"),
                spec,
                DemandModel::deterministic(1_000.0).expect("valid"),
                Assurance::new(1.0, 0.5).expect("valid"),
            )
            .expect("valid"),
        );
        patterns.push(ArrivalPattern::periodic(window).expect("valid"));
    }
    (TaskSet::new(tasks).expect("non-empty"), patterns)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_invariants_hold_for_random_workloads(
        params in proptest::collection::vec(arb_task_params(), 1..6),
        seed in 0u64..10_000,
    ) {
        let (tasks, patterns) = build(&params);
        let platform = Platform::powernow(EnergySetting::e1());
        let horizon = TimeDelta::from_millis(500);
        let config = SimConfig::new(horizon).with_trace().with_job_records();
        let out = Engine::run(&tasks, &patterns, &platform, &mut MaxSpeedEdf::new(), &config, seed)
            .expect("engine must not fail on valid input");
        let m = &out.metrics;

        // Time conservation.
        prop_assert!(m.busy_time <= horizon);
        // Utility can never exceed the ceiling.
        prop_assert!(m.total_utility <= m.max_possible_utility + 1e-6);
        // Energy is non-negative and zero iff no work ran.
        prop_assert!(m.energy >= 0.0);
        prop_assert_eq!(m.energy == 0.0, m.busy_time.is_zero());
        // Job conservation: completed + aborted + unfinished = arrived.
        let records = out.jobs.as_ref().expect("records enabled");
        prop_assert_eq!(records.len() as u64, m.jobs_arrived());
        let completed = records.iter().filter(|r| r.is_completed()).count() as u64;
        prop_assert_eq!(completed, m.jobs_completed());
        // The uniprocessor never overlaps executions.
        let trace = out.trace.as_ref().expect("trace enabled");
        prop_assert!(trace.is_serial());
        prop_assert_eq!(trace.busy_time(), m.busy_time);
        // Per-task accounting is consistent.
        for tm in &m.per_task {
            prop_assert!(tm.completed + tm.aborted_by_termination + tm.aborted_by_policy <= tm.arrived);
            prop_assert!(tm.assured <= tm.observable);
            prop_assert!(tm.utility <= tm.max_utility + 1e-6);
        }
    }

    #[test]
    fn engine_is_deterministic(
        params in proptest::collection::vec(arb_task_params(), 1..4),
        seed in 0u64..10_000,
    ) {
        let (tasks, patterns) = build(&params);
        let platform = Platform::powernow(EnergySetting::e2());
        let config = SimConfig::new(TimeDelta::from_millis(200));
        let a = Engine::run(&tasks, &patterns, &platform, &mut MaxSpeedEdf::new(), &config, seed)
            .expect("run");
        let b = Engine::run(&tasks, &patterns, &platform, &mut MaxSpeedEdf::new(), &config, seed)
            .expect("run");
        prop_assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn completed_jobs_always_beat_their_termination(
        params in proptest::collection::vec(arb_task_params(), 1..4),
        seed in 0u64..10_000,
    ) {
        let (tasks, patterns) = build(&params);
        let platform = Platform::powernow(EnergySetting::e1());
        let config = SimConfig::new(TimeDelta::from_millis(300)).with_job_records();
        let out = Engine::run(&tasks, &patterns, &platform, &mut MaxSpeedEdf::new(), &config, seed)
            .expect("run");
        for r in out.jobs.expect("records") {
            if let eua_sim::JobOutcome::Completed { at, utility } = r.outcome {
                let task = tasks.task(r.task);
                let termination = r.arrival.saturating_add(task.termination_offset());
                prop_assert!(at <= termination, "{} completed after termination", r.id);
                prop_assert!(utility >= 0.0);
                // Executed exactly the sampled demand.
                prop_assert_eq!(r.executed, r.actual_demand);
            }
        }
    }
}
