//! Error type for TUF construction and queries.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or querying a time/utility function.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TufError {
    /// A utility value was negative, NaN, or infinite.
    InvalidUtility {
        /// The offending value.
        value: f64,
    },
    /// The maximum utility was zero — such a TUF can never accrue anything
    /// and almost certainly indicates a configuration mistake.
    ZeroMaxUtility,
    /// The termination offset was zero; the job would be aborted the moment
    /// it arrives.
    ZeroTermination,
    /// A piecewise definition increased somewhere — the paper restricts
    /// itself to non-increasing unimodal TUFs.
    NotNonIncreasing {
        /// Index of the first breakpoint whose utility exceeds its
        /// predecessor's.
        index: usize,
    },
    /// Piecewise breakpoints were not strictly increasing in time.
    UnsortedBreakpoints {
        /// Index of the first out-of-order breakpoint.
        index: usize,
    },
    /// A piecewise TUF had no breakpoints.
    EmptyBreakpoints,
    /// An assurance fraction `ν` outside `[0, 1]` was supplied to
    /// [`crate::Tuf::critical_time`].
    InvalidAssuranceFraction {
        /// The offending value.
        value: f64,
    },
    /// An exponential TUF was given a non-positive decay constant.
    InvalidDecay {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for TufError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TufError::InvalidUtility { value } => {
                write!(
                    f,
                    "utility values must be finite and non-negative, got {value}"
                )
            }
            TufError::ZeroMaxUtility => write!(f, "maximum utility must be positive"),
            TufError::ZeroTermination => write!(f, "termination offset must be positive"),
            TufError::NotNonIncreasing { index } => {
                write!(
                    f,
                    "tuf must be non-increasing (violated at breakpoint {index})"
                )
            }
            TufError::UnsortedBreakpoints { index } => {
                write!(
                    f,
                    "breakpoints must be strictly increasing in time (violated at index {index})"
                )
            }
            TufError::EmptyBreakpoints => write!(f, "piecewise tuf needs at least one breakpoint"),
            TufError::InvalidAssuranceFraction { value } => {
                write!(f, "assurance fraction must lie in [0, 1], got {value}")
            }
            TufError::InvalidDecay { value } => {
                write!(
                    f,
                    "exponential decay constant must be positive and finite, got {value}"
                )
            }
        }
    }
}

impl Error for TufError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_meaningful() {
        for e in [
            TufError::InvalidUtility { value: -1.0 },
            TufError::ZeroMaxUtility,
            TufError::ZeroTermination,
            TufError::NotNonIncreasing { index: 3 },
            TufError::UnsortedBreakpoints { index: 1 },
            TufError::EmptyBreakpoints,
            TufError::InvalidAssuranceFraction { value: 2.0 },
            TufError::InvalidDecay { value: 0.0 },
        ] {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<TufError>();
    }
}
