//! Time/utility functions (TUFs) for utility-accrual real-time scheduling.
//!
//! A TUF generalizes the classical deadline: completing an activity at time
//! `t` yields utility `U(t)` rather than a binary "met/missed" verdict
//! (Jensen, Locke, Tokuda 1985). This crate implements the class of TUFs the
//! EUA\* paper schedules — **non-increasing, unimodal** functions defined on
//! a bounded interval `[I, X]` (initial time to termination time) — plus the
//! operations EUA\* needs:
//!
//! * evaluation of `U(t)` over a job's sojourn time,
//! * the maximum utility `U^max = U(0)`,
//! * inversion of the **critical time** `D` from an assurance fraction `ν`
//!   via `ν = U(D)/U^max` (paper §3.1),
//! * the Figure 1 example shapes from real applications
//!   ([`presets`]).
//!
//! Offsets are relative to the job's initial time (its arrival under the
//! paper's model); `U(t) = 0` for `t` past the termination offset, where the
//! job would be aborted instead of completed.
//!
//! # Example
//!
//! ```
//! use eua_platform::TimeDelta;
//! use eua_tuf::Tuf;
//!
//! # fn main() -> Result<(), eua_tuf::TufError> {
//! // A classical deadline is a downward-step TUF.
//! let step = Tuf::step(10.0, TimeDelta::from_millis(5))?;
//! assert_eq!(step.utility(TimeDelta::from_millis(4)), 10.0);
//! assert_eq!(step.utility(TimeDelta::from_millis(6)), 0.0);
//!
//! // For ν = 1 the critical time is the step's discontinuity.
//! assert_eq!(step.critical_time(1.0), Some(TimeDelta::from_millis(5)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod presets;
mod shape;
mod transform;

pub use error::TufError;
pub use shape::{ExponentialTuf, LinearTuf, PiecewiseTuf, StepTuf, Tuf};
