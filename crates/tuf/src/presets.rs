//! The example TUF shapes of the paper's Figure 1, drawn from real
//! applications: the AWACS tracker (Clark et al.) and the coastal air
//! defense plot-correlation / missile-control activities (Maynard et al.).
//!
//! The paper reproduces these only as qualitative sketches; the presets
//! here parameterize each sketch over a caller-supplied scale so examples
//! and tests can exercise realistic shapes.

use eua_platform::TimeDelta;

use crate::error::TufError;
use crate::shape::Tuf;

/// Figure 1(a) — AWACS **track association**: full utility `u1` until the
/// critical time `tc`, then a steep linear drop to zero by the termination.
///
/// # Errors
///
/// Returns an error for non-positive utility or a zero `tc`.
///
/// # Example
///
/// ```
/// use eua_platform::TimeDelta;
/// use eua_tuf::presets;
///
/// # fn main() -> Result<(), eua_tuf::TufError> {
/// let tuf = presets::track_association(10.0, TimeDelta::from_millis(25))?;
/// assert_eq!(tuf.max_utility(), 10.0);
/// # Ok(())
/// # }
/// ```
pub fn track_association(u1: f64, tc: TimeDelta) -> Result<Tuf, TufError> {
    // The sketch shows the utility collapsing quickly after t_c; give the
    // drop 20% of the plateau length.
    let tail = TimeDelta::from_micros((tc.as_micros() / 5).max(1));
    Tuf::piecewise([(TimeDelta::ZERO, u1), (tc, u1), (tc + tail, 0.0)])
}

/// Figure 1(b) — coastal-air-defense **plot correlation** (and the
/// identically shaped sensor *maintenance* function): utility `umax` holds
/// until `tf`, halves linearly by `2·tf`, and the activity terminates
/// there.
///
/// # Errors
///
/// Returns an error for non-positive utility or a zero `tf`.
pub fn plot_correlation(umax: f64, tf: TimeDelta) -> Result<Tuf, TufError> {
    Tuf::piecewise([(TimeDelta::ZERO, umax), (tf, umax), (tf * 2, umax * 0.5)])
}

/// Figure 1(c) — **missile control**: utility decays through the launch /
/// mid-course / intercept phases; modeled as an exponential decay with the
/// time constant at one third of the engagement window.
///
/// # Errors
///
/// Returns an error for non-positive utility or a zero `window`.
pub fn missile_control(umax: f64, window: TimeDelta) -> Result<Tuf, TufError> {
    let tau = TimeDelta::from_micros((window.as_micros() / 3).max(1));
    Tuf::exponential(umax, tau, window)
}

/// Figure 1(d) — the classical **downward-step** deadline TUF.
///
/// # Errors
///
/// Returns an error for non-positive utility or a zero `deadline`.
pub fn step_deadline(umax: f64, deadline: TimeDelta) -> Result<Tuf, TufError> {
    Tuf::step(umax, deadline)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    #[test]
    fn track_association_has_plateau_then_cliff() {
        let t = track_association(10.0, ms(25)).unwrap();
        assert_eq!(t.utility(ms(25)), 10.0);
        assert!(t.utility(ms(28)) < 10.0);
        assert_eq!(t.utility(ms(31)), 0.0);
        assert_eq!(t.termination(), ms(30));
    }

    #[test]
    fn plot_correlation_halves_by_two_tf() {
        let t = plot_correlation(8.0, ms(10)).unwrap();
        assert_eq!(t.utility(ms(10)), 8.0);
        assert!((t.utility(ms(20)) - 4.0).abs() < 1e-9);
        assert_eq!(t.utility(ms(21)), 0.0);
    }

    #[test]
    fn missile_control_decays_smoothly() {
        let t = missile_control(6.0, ms(30)).unwrap();
        assert_eq!(t.utility(TimeDelta::ZERO), 6.0);
        let mid = t.utility(ms(15));
        assert!(mid > 0.0 && mid < 6.0);
        assert_eq!(t.utility(ms(31)), 0.0);
    }

    #[test]
    fn step_deadline_matches_plain_step() {
        let t = step_deadline(5.0, ms(3)).unwrap();
        assert!(t.is_step());
        assert_eq!(t.critical_time(1.0), Some(ms(3)));
    }

    #[test]
    fn presets_propagate_validation_errors() {
        assert!(track_association(0.0, ms(1)).is_err());
        assert!(plot_correlation(-1.0, ms(1)).is_err());
        assert!(missile_control(1.0, TimeDelta::ZERO).is_err());
        assert!(step_deadline(1.0, TimeDelta::ZERO).is_err());
    }
}
