//! The non-increasing, unimodal TUF shapes scheduled by EUA\*.

use std::fmt;

use eua_platform::TimeDelta;

use crate::error::TufError;

fn validate_utility(value: f64) -> Result<(), TufError> {
    if !value.is_finite() || value < 0.0 {
        return Err(TufError::InvalidUtility { value });
    }
    Ok(())
}

/// A downward-step TUF — the classical deadline (paper Fig. 1(d)).
///
/// `U(t) = height` for `t ≤ step_at`, `0` afterwards. The job may remain
/// formally alive until `termination` (where it is aborted), which defaults
/// to the step itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepTuf {
    height: f64,
    step_at: TimeDelta,
    termination: TimeDelta,
}

impl StepTuf {
    /// Creates a step TUF whose utility drops from `height` to zero at
    /// `deadline`, with termination at the deadline.
    ///
    /// # Errors
    ///
    /// Returns an error if `height` is non-positive or non-finite, or if
    /// `deadline` is zero.
    pub fn new(height: f64, deadline: TimeDelta) -> Result<Self, TufError> {
        StepTuf::with_termination(height, deadline, deadline)
    }

    /// Creates a step TUF whose step and termination differ; the job stays
    /// schedulable (at zero payoff) until `termination`.
    ///
    /// If `termination` precedes `step_at` it is clamped up to `step_at`
    /// (utility past the step is zero either way).
    ///
    /// # Errors
    ///
    /// As [`StepTuf::new`].
    pub fn with_termination(
        height: f64,
        step_at: TimeDelta,
        termination: TimeDelta,
    ) -> Result<Self, TufError> {
        validate_utility(height)?;
        if height == 0.0 {
            return Err(TufError::ZeroMaxUtility);
        }
        if step_at.is_zero() || termination.is_zero() {
            return Err(TufError::ZeroTermination);
        }
        let termination = termination.max(step_at);
        Ok(StepTuf {
            height,
            step_at,
            termination,
        })
    }

    /// The step height (also the maximum utility).
    #[must_use]
    pub fn height(&self) -> f64 {
        self.height
    }

    /// The offset at which utility drops to zero.
    #[must_use]
    pub fn step_at(&self) -> TimeDelta {
        self.step_at
    }
}

/// A linearly decaying TUF: `U(t) = umax·(1 − t/termination)` on
/// `[0, termination]`, used by the paper's Fig. 3 experiments with slope
/// `−U^max / P`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearTuf {
    umax: f64,
    termination: TimeDelta,
}

impl LinearTuf {
    /// Creates a linear TUF decaying from `umax` at offset zero to `0` at
    /// `termination`.
    ///
    /// # Errors
    ///
    /// Returns an error if `umax` is non-positive or non-finite, or if
    /// `termination` is zero.
    pub fn new(umax: f64, termination: TimeDelta) -> Result<Self, TufError> {
        validate_utility(umax)?;
        if umax == 0.0 {
            return Err(TufError::ZeroMaxUtility);
        }
        if termination.is_zero() {
            return Err(TufError::ZeroTermination);
        }
        Ok(LinearTuf { umax, termination })
    }

    /// The utility at offset zero.
    #[must_use]
    pub fn umax(&self) -> f64 {
        self.umax
    }

    /// The decay slope in utility per microsecond (negative).
    #[must_use]
    pub fn slope(&self) -> f64 {
        -self.umax / self.termination.as_micros() as f64
    }
}

/// A piecewise-linear, non-increasing TUF given by breakpoints
/// `(t_0 = 0, u_0), …, (t_k, u_k)`; utility is interpolated between
/// breakpoints, equals `0` after `t_k`, and `t_k` is the termination
/// offset. Plateaus (repeated utility values) express the step-plus-decay
/// shapes of the paper's Fig. 1(a)–(c).
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseTuf {
    points: Vec<(TimeDelta, f64)>,
}

impl PiecewiseTuf {
    /// Creates a piecewise-linear TUF from breakpoints.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty, the first breakpoint is not at
    /// offset zero (reported as [`TufError::UnsortedBreakpoints`] at index
    /// 0), times are not strictly increasing, utilities increase anywhere,
    /// any utility is invalid, the maximum utility is zero, or the final
    /// breakpoint is at offset zero.
    pub fn new(points: impl IntoIterator<Item = (TimeDelta, f64)>) -> Result<Self, TufError> {
        let points: Vec<(TimeDelta, f64)> = points.into_iter().collect();
        if points.is_empty() {
            return Err(TufError::EmptyBreakpoints);
        }
        if !points[0].0.is_zero() {
            return Err(TufError::UnsortedBreakpoints { index: 0 });
        }
        for (i, pair) in points.windows(2).enumerate() {
            if pair[0].0 >= pair[1].0 {
                return Err(TufError::UnsortedBreakpoints { index: i + 1 });
            }
            if pair[1].1 > pair[0].1 {
                return Err(TufError::NotNonIncreasing { index: i + 1 });
            }
        }
        for &(_, u) in &points {
            validate_utility(u)?;
        }
        if points[0].1 == 0.0 {
            return Err(TufError::ZeroMaxUtility);
        }
        if let Some(last) = points.last() {
            if last.0.is_zero() {
                return Err(TufError::ZeroTermination);
            }
        }
        Ok(PiecewiseTuf { points })
    }

    /// The final breakpoint; [`PiecewiseTuf::new`] guarantees at least one.
    #[allow(clippy::expect_used)]
    fn last_point(&self) -> (TimeDelta, f64) {
        *self
            .points
            .last()
            .expect("points are non-empty by construction")
    }

    /// The breakpoints, in increasing time order.
    #[must_use]
    pub fn breakpoints(&self) -> &[(TimeDelta, f64)] {
        &self.points
    }

    fn eval(&self, t: TimeDelta) -> f64 {
        let last = self.last_point();
        if t > last.0 {
            return 0.0;
        }
        // Find the surrounding segment.
        let mut prev = self.points[0];
        for &(bt, bu) in &self.points {
            if bt == t {
                return bu;
            }
            if bt > t {
                let span = (bt - prev.0).as_micros() as f64;
                let frac = (t - prev.0).as_micros() as f64 / span;
                return prev.1 + (bu - prev.1) * frac;
            }
            prev = (bt, bu);
        }
        last.1
    }
}

/// An exponentially decaying TUF: `U(t) = umax·exp(−t/τ)` on
/// `[0, termination]`, `0` afterwards — a smooth model of "sooner is always
/// better" soft constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialTuf {
    umax: f64,
    /// Time constant τ.
    tau: TimeDelta,
    termination: TimeDelta,
}

impl ExponentialTuf {
    /// Creates an exponential TUF with time constant `tau` truncated at
    /// `termination`.
    ///
    /// # Errors
    ///
    /// Returns an error if `umax` is non-positive or non-finite, `tau` is
    /// zero, or `termination` is zero.
    pub fn new(umax: f64, tau: TimeDelta, termination: TimeDelta) -> Result<Self, TufError> {
        validate_utility(umax)?;
        if umax == 0.0 {
            return Err(TufError::ZeroMaxUtility);
        }
        if tau.is_zero() {
            return Err(TufError::InvalidDecay { value: 0.0 });
        }
        if termination.is_zero() {
            return Err(TufError::ZeroTermination);
        }
        Ok(ExponentialTuf {
            umax,
            tau,
            termination,
        })
    }

    /// The time constant τ.
    #[must_use]
    pub fn tau(&self) -> TimeDelta {
        self.tau
    }
}

/// A non-increasing, unimodal time/utility function.
///
/// This is the value type the rest of the workspace passes around: cheap to
/// clone, comparable, and evaluable without allocation. Construct one with
/// [`Tuf::step`], [`Tuf::linear`], [`Tuf::piecewise`], or
/// [`Tuf::exponential`], or lift a concrete shape with `From`.
///
/// # Example
///
/// ```
/// use eua_platform::TimeDelta;
/// use eua_tuf::Tuf;
///
/// # fn main() -> Result<(), eua_tuf::TufError> {
/// let tuf = Tuf::linear(100.0, TimeDelta::from_millis(10))?;
/// assert_eq!(tuf.max_utility(), 100.0);
/// assert_eq!(tuf.utility(TimeDelta::from_millis(5)), 50.0);
/// // ν = 0.3 ⇒ the critical time is where 30% of the utility remains.
/// assert_eq!(tuf.critical_time(0.3), Some(TimeDelta::from_millis(7)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Tuf {
    /// Downward step (classical deadline).
    Step(StepTuf),
    /// Linear decay to zero.
    Linear(LinearTuf),
    /// Piecewise-linear, non-increasing.
    Piecewise(PiecewiseTuf),
    /// Truncated exponential decay.
    Exponential(ExponentialTuf),
}

impl Tuf {
    /// Creates a step TUF; see [`StepTuf::new`].
    ///
    /// # Errors
    ///
    /// Propagates [`StepTuf::new`] errors.
    pub fn step(height: f64, deadline: TimeDelta) -> Result<Self, TufError> {
        StepTuf::new(height, deadline).map(Tuf::Step)
    }

    /// Creates a linear TUF; see [`LinearTuf::new`].
    ///
    /// # Errors
    ///
    /// Propagates [`LinearTuf::new`] errors.
    pub fn linear(umax: f64, termination: TimeDelta) -> Result<Self, TufError> {
        LinearTuf::new(umax, termination).map(Tuf::Linear)
    }

    /// Creates a piecewise-linear TUF; see [`PiecewiseTuf::new`].
    ///
    /// # Errors
    ///
    /// Propagates [`PiecewiseTuf::new`] errors.
    pub fn piecewise(points: impl IntoIterator<Item = (TimeDelta, f64)>) -> Result<Self, TufError> {
        PiecewiseTuf::new(points).map(Tuf::Piecewise)
    }

    /// Creates an exponential TUF; see [`ExponentialTuf::new`].
    ///
    /// # Errors
    ///
    /// Propagates [`ExponentialTuf::new`] errors.
    pub fn exponential(
        umax: f64,
        tau: TimeDelta,
        termination: TimeDelta,
    ) -> Result<Self, TufError> {
        ExponentialTuf::new(umax, tau, termination).map(Tuf::Exponential)
    }

    /// The utility of completing at offset `t` from the job's initial time.
    ///
    /// Non-increasing in `t`; `0` for any `t` past the termination offset.
    #[must_use]
    pub fn utility(&self, t: TimeDelta) -> f64 {
        match self {
            Tuf::Step(s) => {
                if t <= s.step_at {
                    s.height
                } else {
                    0.0
                }
            }
            Tuf::Linear(l) => {
                if t > l.termination {
                    0.0
                } else {
                    let frac = t.as_micros() as f64 / l.termination.as_micros() as f64;
                    l.umax * (1.0 - frac)
                }
            }
            Tuf::Piecewise(p) => p.eval(t),
            Tuf::Exponential(e) => {
                if t > e.termination {
                    0.0
                } else {
                    e.umax * (-(t.as_micros() as f64) / e.tau.as_micros() as f64).exp()
                }
            }
        }
    }

    /// [`Tuf::utility`] plus the **plateau bound**: the largest offset
    /// `u ≥ t` such that `utility(t')` is bit-identical to `utility(t)`
    /// for every `t' ∈ [t, u]`, or `None` when the value stays constant
    /// forever (a TUF that has decayed to zero never recovers).
    ///
    /// This is the staleness oracle for incrementally maintained UER
    /// caches (DESIGN.md §14): a cached score computed at sojourn `t`
    /// stays valid at a later sojourn `t₁` iff `t₁ ≤ u`. The bound is
    /// conservative — strictly decaying shapes report a zero-width
    /// plateau (`u = t`) even at their terminal zero value's boundary —
    /// but never overestimates: within the reported range the returned
    /// value is exactly what [`Tuf::utility`] computes.
    #[must_use]
    pub fn utility_plateau(&self, t: TimeDelta) -> (f64, Option<TimeDelta>) {
        match self {
            Tuf::Step(s) => {
                if t <= s.step_at {
                    (s.height, Some(s.step_at))
                } else {
                    (0.0, None)
                }
            }
            Tuf::Linear(l) => {
                if t >= l.termination {
                    // `utility` computes `umax·(1 − 1) = 0.0` exactly at
                    // the termination and returns literal `0.0` after it.
                    (0.0, None)
                } else {
                    (self.utility(t), Some(t))
                }
            }
            Tuf::Piecewise(p) => {
                let last = p.last_point();
                if t > last.0 {
                    return (0.0, None);
                }
                let mut prev = p.points[0];
                for &(bt, bu) in &p.points {
                    if bt == t {
                        // At a breakpoint the next segment holds `bu`
                        // until its end iff it is a plateau.
                        let until = p
                            .points
                            .iter()
                            .find(|&&(nt, nu)| nt > t && nu == bu)
                            .map_or(t, |&(nt, _)| nt);
                        return (bu, Some(until));
                    }
                    if bt > t {
                        // `prev.1 + (bu − prev.1)·frac` equals `prev.1`
                        // exactly on a plateau segment (`bu − prev.1 = 0`).
                        let until = if prev.1 == bu { bt } else { t };
                        return (self.utility(t), Some(until));
                    }
                    prev = (bt, bu);
                }
                (last.1, Some(t))
            }
            Tuf::Exponential(e) => {
                if t > e.termination {
                    (0.0, None)
                } else {
                    (self.utility(t), Some(t))
                }
            }
        }
    }

    /// The maximum utility `U^max = U(0)`.
    #[must_use]
    pub fn max_utility(&self) -> f64 {
        match self {
            Tuf::Step(s) => s.height,
            Tuf::Linear(l) => l.umax,
            Tuf::Piecewise(p) => p.points[0].1,
            Tuf::Exponential(e) => e.umax,
        }
    }

    /// The termination offset `X − I`: completing (or still running) past
    /// this point raises the abort exception.
    #[must_use]
    pub fn termination(&self) -> TimeDelta {
        match self {
            Tuf::Step(s) => s.termination,
            Tuf::Linear(l) => l.termination,
            Tuf::Piecewise(p) => p.last_point().0,
            Tuf::Exponential(e) => e.termination,
        }
    }

    /// `true` for the downward-step shape, for which the paper restricts
    /// `ν ∈ {0, 1}`.
    #[must_use]
    pub fn is_step(&self) -> bool {
        matches!(self, Tuf::Step(_))
    }

    /// The critical time `D`: the **largest** offset with
    /// `U(D) ≥ ν·U^max` (paper §3.1, `ν_i = U_i(D_i)/U_i^max`).
    ///
    /// Returns `None` when `ν` is NaN or outside `[0, 1]`. For `ν = 0` the
    /// critical time is the termination offset; for `ν = 1` it is the end
    /// of the initial full-utility plateau.
    #[must_use]
    pub fn critical_time(&self, nu: f64) -> Option<TimeDelta> {
        if !(0.0..=1.0).contains(&nu) {
            return None;
        }
        if nu == 0.0 {
            return Some(self.termination());
        }
        let target = nu * self.max_utility();
        let exact = match self {
            Tuf::Step(s) => s.step_at,
            Tuf::Linear(l) => {
                // U(t) = umax·(1 − t/X) ≥ ν·umax ⟺ t ≤ (1 − ν)·X.
                let micros = ((1.0 - nu) * l.termination.as_micros() as f64).floor();
                TimeDelta::from_micros(micros as u64)
            }
            Tuf::Piecewise(p) => piecewise_critical(p, target),
            Tuf::Exponential(e) => {
                // umax·exp(−t/τ) ≥ ν·umax ⟺ t ≤ τ·ln(1/ν).
                let micros = (e.tau.as_micros() as f64 * (1.0 / nu).ln()).floor();
                let unclamped = TimeDelta::from_micros(micros.min(u64::MAX as f64).max(0.0) as u64);
                unclamped.min(e.termination)
            }
        };
        // Guard against floating-point slop: step down to the last integer
        // microsecond actually meeting the target.
        let mut d = exact;
        while !d.is_zero() && self.utility(d) + 1e-9 < target {
            d -= TimeDelta::from_micros(1);
        }
        Some(d)
    }
}

fn piecewise_critical(p: &PiecewiseTuf, target: f64) -> TimeDelta {
    let pts = &p.points;
    let last = p.last_point();
    if last.1 >= target {
        return last.0;
    }
    // Walk backwards to the segment straddling the target level.
    for pair in pts.windows(2).rev() {
        let (t0, u0) = pair[0];
        let (t1, u1) = pair[1];
        if u0 >= target && target >= u1 {
            if (u0 - u1).abs() < f64::EPSILON {
                // Plateau at exactly the target level: latest point wins.
                return t1;
            }
            let frac = (u0 - target) / (u0 - u1);
            let span = (t1 - t0).as_micros() as f64;
            return t0 + TimeDelta::from_micros((frac * span).floor() as u64);
        }
    }
    TimeDelta::ZERO
}

impl From<StepTuf> for Tuf {
    fn from(s: StepTuf) -> Tuf {
        Tuf::Step(s)
    }
}

impl From<LinearTuf> for Tuf {
    fn from(l: LinearTuf) -> Tuf {
        Tuf::Linear(l)
    }
}

impl From<PiecewiseTuf> for Tuf {
    fn from(p: PiecewiseTuf) -> Tuf {
        Tuf::Piecewise(p)
    }
}

impl From<ExponentialTuf> for Tuf {
    fn from(e: ExponentialTuf) -> Tuf {
        Tuf::Exponential(e)
    }
}

impl fmt::Display for Tuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tuf::Step(s) => write!(f, "step(U={}, D={})", s.height, s.step_at),
            Tuf::Linear(l) => write!(f, "linear(U={}, X={})", l.umax, l.termination),
            Tuf::Piecewise(p) => write!(f, "piecewise({} points)", p.points.len()),
            Tuf::Exponential(e) => {
                write!(f, "exp(U={}, tau={}, X={})", e.umax, e.tau, e.termination)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    #[test]
    fn step_utility_and_boundaries() {
        let t = Tuf::step(7.0, ms(10)).unwrap();
        assert_eq!(t.utility(TimeDelta::ZERO), 7.0);
        assert_eq!(t.utility(ms(10)), 7.0);
        assert_eq!(t.utility(ms(10) + TimeDelta::from_micros(1)), 0.0);
        assert_eq!(t.max_utility(), 7.0);
        assert_eq!(t.termination(), ms(10));
        assert!(t.is_step());
    }

    #[test]
    fn step_with_later_termination() {
        let s = StepTuf::with_termination(4.0, ms(5), ms(20)).unwrap();
        let t = Tuf::from(s);
        assert_eq!(t.utility(ms(6)), 0.0);
        assert_eq!(t.termination(), ms(20));
        assert_eq!(t.critical_time(1.0), Some(ms(5)));
        assert_eq!(t.critical_time(0.0), Some(ms(20)));
    }

    #[test]
    fn step_rejects_degenerate_inputs() {
        assert_eq!(Tuf::step(0.0, ms(1)).unwrap_err(), TufError::ZeroMaxUtility);
        assert_eq!(
            Tuf::step(1.0, TimeDelta::ZERO).unwrap_err(),
            TufError::ZeroTermination
        );
        assert!(matches!(
            Tuf::step(f64::NAN, ms(1)).unwrap_err(),
            TufError::InvalidUtility { .. }
        ));
        assert!(matches!(
            Tuf::step(-3.0, ms(1)).unwrap_err(),
            TufError::InvalidUtility { .. }
        ));
    }

    #[test]
    fn linear_utility_interpolates() {
        let t = Tuf::linear(100.0, ms(10)).unwrap();
        assert_eq!(t.utility(TimeDelta::ZERO), 100.0);
        assert!((t.utility(ms(2)) - 80.0).abs() < 1e-9);
        assert!((t.utility(ms(10))).abs() < 1e-9);
        assert_eq!(t.utility(ms(11)), 0.0);
    }

    #[test]
    fn linear_slope_matches_fig3_definition() {
        let l = LinearTuf::new(50.0, ms(100)).unwrap();
        assert!((l.slope() - (-50.0 / 100_000.0)).abs() < 1e-12);
    }

    #[test]
    fn linear_critical_time_inverts_exactly() {
        let t = Tuf::linear(100.0, ms(10)).unwrap();
        for nu in [0.0, 0.1, 0.3, 0.5, 0.9, 1.0] {
            let d = t.critical_time(nu).unwrap();
            assert!(
                t.utility(d) + 1e-6 >= nu * 100.0,
                "nu={nu}: U({d}) = {} < {}",
                t.utility(d),
                nu * 100.0
            );
            // And one microsecond later no longer meets the bound (except at
            // the ν=0 boundary where the TUF simply ends).
            if nu > 0.0 && d < t.termination() {
                let after = d + TimeDelta::from_micros(1);
                assert!(t.utility(after) < nu * 100.0 + 1e-6);
            }
        }
    }

    #[test]
    fn piecewise_eval_plateau_and_decay() {
        // AWACS-like: full utility for 5 ms, linear decay to 20% by 15 ms,
        // flat tail until 20 ms.
        let t = Tuf::piecewise([
            (TimeDelta::ZERO, 10.0),
            (ms(5), 10.0),
            (ms(15), 2.0),
            (ms(20), 2.0),
        ])
        .unwrap();
        assert_eq!(t.utility(ms(3)), 10.0);
        assert!((t.utility(ms(10)) - 6.0).abs() < 1e-9);
        assert_eq!(t.utility(ms(18)), 2.0);
        assert_eq!(t.utility(ms(21)), 0.0);
        assert_eq!(t.max_utility(), 10.0);
        assert_eq!(t.termination(), ms(20));
    }

    #[test]
    fn piecewise_critical_time_on_each_region() {
        let t = Tuf::piecewise([
            (TimeDelta::ZERO, 10.0),
            (ms(5), 10.0),
            (ms(15), 2.0),
            (ms(20), 2.0),
        ])
        .unwrap();
        // ν = 1: end of plateau.
        assert_eq!(t.critical_time(1.0), Some(ms(5)));
        // ν = 0.6: inside the decaying segment: U = 6 at t = 10 ms.
        assert_eq!(t.critical_time(0.6), Some(ms(10)));
        // ν = 0.2: the tail still meets it, so the termination wins.
        assert_eq!(t.critical_time(0.2), Some(ms(20)));
        // ν = 0: termination.
        assert_eq!(t.critical_time(0.0), Some(ms(20)));
    }

    #[test]
    fn piecewise_rejects_bad_shapes() {
        assert_eq!(Tuf::piecewise([]).unwrap_err(), TufError::EmptyBreakpoints);
        assert_eq!(
            Tuf::piecewise([(ms(1), 5.0)]).unwrap_err(),
            TufError::UnsortedBreakpoints { index: 0 }
        );
        assert_eq!(
            Tuf::piecewise([(TimeDelta::ZERO, 5.0), (ms(1), 6.0)]).unwrap_err(),
            TufError::NotNonIncreasing { index: 1 }
        );
        assert_eq!(
            Tuf::piecewise([(TimeDelta::ZERO, 5.0), (TimeDelta::ZERO, 4.0)]).unwrap_err(),
            TufError::UnsortedBreakpoints { index: 1 }
        );
        assert_eq!(
            Tuf::piecewise([(TimeDelta::ZERO, 0.0)]).unwrap_err(),
            TufError::ZeroMaxUtility
        );
    }

    #[test]
    fn exponential_decay_and_critical_time() {
        let tau = ms(10);
        let t = Tuf::exponential(8.0, tau, ms(100)).unwrap();
        assert_eq!(t.utility(TimeDelta::ZERO), 8.0);
        assert!((t.utility(ms(10)) - 8.0 / std::f64::consts::E).abs() < 1e-9);
        assert_eq!(t.utility(ms(101)), 0.0);
        // ν = e⁻¹ ⇒ D = τ.
        let d = t.critical_time(1.0 / std::f64::consts::E).unwrap();
        assert!((d.as_micros() as i64 - 10_000).abs() <= 1, "d = {d}");
        // ν small enough that τ·ln(1/ν) exceeds the termination ⇒ clamp.
        assert_eq!(t.critical_time(1e-9), Some(ms(100)));
    }

    #[test]
    fn critical_time_rejects_invalid_nu() {
        let t = Tuf::step(1.0, ms(1)).unwrap();
        assert_eq!(t.critical_time(-0.1), None);
        assert_eq!(t.critical_time(1.1), None);
        assert_eq!(t.critical_time(f64::NAN), None);
    }

    #[test]
    fn utility_is_non_increasing_for_all_shapes() {
        let shapes = [
            Tuf::step(5.0, ms(7)).unwrap(),
            Tuf::linear(5.0, ms(7)).unwrap(),
            Tuf::piecewise([(TimeDelta::ZERO, 5.0), (ms(3), 4.0), (ms(7), 1.0)]).unwrap(),
            Tuf::exponential(5.0, ms(2), ms(7)).unwrap(),
        ];
        for t in &shapes {
            let mut prev = f64::INFINITY;
            for us in (0..=8_000).step_by(13) {
                let u = t.utility(TimeDelta::from_micros(us));
                assert!(u <= prev + 1e-12, "{t} increased at {us}us");
                assert!(u >= 0.0);
                prev = u;
            }
        }
    }

    #[test]
    fn from_impls_round_trip() {
        let s = StepTuf::new(1.0, ms(1)).unwrap();
        assert!(Tuf::from(s).is_step());
        let l = LinearTuf::new(1.0, ms(1)).unwrap();
        assert!(!Tuf::from(l).is_step());
        let e = ExponentialTuf::new(1.0, ms(1), ms(2)).unwrap();
        assert_eq!(Tuf::from(e).termination(), ms(2));
        let p = PiecewiseTuf::new([(TimeDelta::ZERO, 2.0), (ms(1), 1.0)]).unwrap();
        assert_eq!(Tuf::from(p.clone()).max_utility(), 2.0);
        assert_eq!(p.breakpoints().len(), 2);
    }

    #[test]
    fn display_names_the_shape() {
        assert!(Tuf::step(1.0, ms(1))
            .unwrap()
            .to_string()
            .starts_with("step"));
        assert!(Tuf::linear(1.0, ms(1))
            .unwrap()
            .to_string()
            .starts_with("linear"));
        assert!(Tuf::exponential(1.0, ms(1), ms(1))
            .unwrap()
            .to_string()
            .starts_with("exp"));
    }

    /// Every shape, dense offset sweep: the plateau value must be
    /// bit-identical to `utility` at the query point, and at every later
    /// microsecond up to (and including) the reported bound.
    #[test]
    fn utility_plateau_value_and_bound_are_exact() {
        let shapes = [
            Tuf::step(7.0, ms(10)).unwrap(),
            Tuf::from(StepTuf::with_termination(4.0, ms(5), ms(20)).unwrap()),
            Tuf::linear(100.0, ms(10)).unwrap(),
            Tuf::exponential(5.0, ms(3), ms(12)).unwrap(),
            Tuf::piecewise([
                (TimeDelta::ZERO, 9.0),
                (ms(2), 9.0),
                (ms(4), 3.0),
                (ms(6), 3.0),
                (ms(8), 0.0),
            ])
            .unwrap(),
        ];
        for tuf in &shapes {
            for t_us in (0..25_000)
                .step_by(173)
                .chain([0, 1, 9_999, 10_000, 10_001])
            {
                let t = TimeDelta::from_micros(t_us);
                let (value, until) = tuf.utility_plateau(t);
                assert!(
                    value == tuf.utility(t),
                    "{tuf}: plateau value at {t_us}µs: {value} vs {}",
                    tuf.utility(t)
                );
                // Probe inside the plateau (sampled) and at its exact end.
                let probes: Vec<TimeDelta> = match until {
                    Some(u) => {
                        assert!(u >= t, "{tuf}: bound before the query at {t_us}µs");
                        vec![u, t + TimeDelta::from_micros((u - t).as_micros() / 2)]
                    }
                    // "Constant forever": probe far beyond every shape's
                    // termination.
                    None => vec![t + ms(1), ms(40), ms(400)],
                };
                for p in probes {
                    assert!(
                        tuf.utility(p) == value,
                        "{tuf}: plateau [{t_us}µs, {:?}] broken at {p:?}",
                        until
                    );
                }
            }
        }
    }

    /// The step shape must report its full plateau (that width is what
    /// makes score caching effective), not just a conservative point.
    #[test]
    fn utility_plateau_widths_for_the_step_shape() {
        let t = Tuf::step(7.0, ms(10)).unwrap();
        assert_eq!(t.utility_plateau(ms(2)), (7.0, Some(ms(10))));
        assert_eq!(t.utility_plateau(ms(10)), (7.0, Some(ms(10))));
        // Past the step the value is zero forever.
        assert_eq!(
            t.utility_plateau(ms(10) + TimeDelta::from_micros(1)),
            (0.0, None)
        );
    }

    /// Piecewise plateau segments are reported across their full width;
    /// decaying segments report a zero-width plateau.
    #[test]
    fn utility_plateau_widths_for_piecewise_segments() {
        let t = Tuf::piecewise([
            (TimeDelta::ZERO, 9.0),
            (ms(2), 9.0),
            (ms(4), 3.0),
            (ms(6), 3.0),
            (ms(8), 0.0),
        ])
        .unwrap();
        // On the initial flat segment: valid until the segment's end.
        assert_eq!(t.utility_plateau(ms(1)), (9.0, Some(ms(2))));
        assert_eq!(t.utility_plateau(TimeDelta::ZERO), (9.0, Some(ms(2))));
        // On a decaying segment: exact value, zero-width bound.
        let (v, until) = t.utility_plateau(ms(3));
        assert_eq!(v, t.utility(ms(3)));
        assert_eq!(until, Some(ms(3)));
        // Mid plateau between 4 and 6 ms.
        assert_eq!(t.utility_plateau(ms(5)), (3.0, Some(ms(6))));
        // Past the last breakpoint: zero forever.
        assert_eq!(t.utility_plateau(ms(9)), (0.0, None));
    }
}
