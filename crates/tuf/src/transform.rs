//! TUF transformations: scaling, delaying, and truncating existing
//! shapes. All transforms preserve the non-increasing invariant, so the
//! results remain valid scheduler inputs.

use eua_platform::TimeDelta;

use crate::error::TufError;
use crate::shape::Tuf;

impl Tuf {
    /// A copy with all utility values multiplied by `k` — e.g. to derive
    /// per-mission importance weights from one shape template.
    ///
    /// # Errors
    ///
    /// Returns [`TufError::InvalidUtility`] if `k` is non-positive or
    /// non-finite (scaling by zero would produce an unusable all-zero
    /// TUF).
    pub fn scaled(&self, k: f64) -> Result<Tuf, TufError> {
        if !k.is_finite() || k <= 0.0 {
            return Err(TufError::InvalidUtility { value: k });
        }
        let out = match self {
            Tuf::Step(s) => crate::shape::StepTuf::with_termination(
                s.height() * k,
                s.step_at(),
                self.termination(),
            )
            .map(Tuf::Step)?,
            Tuf::Linear(_) => Tuf::linear(self.max_utility() * k, self.termination())?,
            Tuf::Piecewise(p) => Tuf::piecewise(
                p.breakpoints()
                    .iter()
                    .map(|&(t, u)| (t, u * k))
                    .collect::<Vec<_>>(),
            )?,
            Tuf::Exponential(e) => {
                Tuf::exponential(self.max_utility() * k, e.tau(), self.termination())?
            }
        };
        Ok(out)
    }

    /// A copy whose clock starts `delay` later: full utility holds for an
    /// extra `delay` of plateau before the original shape begins, and the
    /// termination moves out by the same amount. Models pipelines where a
    /// fixed downstream latency is already accounted for.
    ///
    /// The result is expressed as a piecewise TUF.
    ///
    /// # Errors
    ///
    /// Propagates piecewise-construction errors (cannot occur for a valid
    /// input shape).
    pub fn delayed(&self, delay: TimeDelta) -> Result<Tuf, TufError> {
        if delay.is_zero() {
            return Ok(self.clone());
        }
        let mut points: Vec<(TimeDelta, f64)> = vec![
            (TimeDelta::ZERO, self.max_utility()),
            (delay, self.max_utility()),
        ];
        for (t, u) in self.sample_breakpoints() {
            points.push((t + delay, u));
        }
        Tuf::piecewise(points)
    }

    /// A copy truncated at `termination`: identical utility before the
    /// cut, zero (and job abortion) afterwards. Models a tightened mode
    /// change.
    ///
    /// # Errors
    ///
    /// Returns [`TufError::ZeroTermination`] if `termination` is zero;
    /// other construction errors cannot occur for a valid input.
    pub fn truncated(&self, termination: TimeDelta) -> Result<Tuf, TufError> {
        if termination.is_zero() {
            return Err(TufError::ZeroTermination);
        }
        if termination >= self.termination() {
            return Ok(self.clone());
        }
        let mut points: Vec<(TimeDelta, f64)> = vec![(TimeDelta::ZERO, self.max_utility())];
        for (t, u) in self.sample_breakpoints() {
            if t < termination {
                points.push((t, u));
            }
        }
        points.push((termination, self.utility(termination)));
        Tuf::piecewise(points)
    }

    /// Characteristic points of the shape (excluding the origin), in
    /// increasing time order, suitable for piecewise reconstruction.
    fn sample_breakpoints(&self) -> Vec<(TimeDelta, f64)> {
        match self {
            Tuf::Step(s) => {
                let mut v = vec![(s.step_at(), s.height())];
                if self.termination() > s.step_at() {
                    // Note the piecewise form interpolates the cliff over
                    // 1 µs rather than jumping instantaneously.
                    v.push((s.step_at() + TimeDelta::from_micros(1), 0.0));
                    v.push((self.termination(), 0.0));
                }
                v
            }
            Tuf::Linear(_) => vec![(self.termination(), 0.0)],
            Tuf::Piecewise(p) => p.breakpoints()[1..].to_vec(),
            Tuf::Exponential(_) => {
                // Sample the curve at sixteen points; downstream consumers
                // treat the result as an approximation.
                let x = self.termination().as_micros();
                (1..=16)
                    .map(|i| {
                        let t = TimeDelta::from_micros(x * i / 16);
                        (t, self.utility(t))
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    #[test]
    fn scaling_multiplies_utility_everywhere() {
        for tuf in [
            Tuf::step(4.0, ms(10)).unwrap(),
            Tuf::linear(4.0, ms(10)).unwrap(),
            Tuf::exponential(4.0, ms(3), ms(10)).unwrap(),
            Tuf::piecewise([(TimeDelta::ZERO, 4.0), (ms(5), 2.0), (ms(10), 1.0)]).unwrap(),
        ] {
            let scaled = tuf.scaled(2.5).unwrap();
            for us in (0..12_000).step_by(500) {
                let t = TimeDelta::from_micros(us);
                assert!(
                    (scaled.utility(t) - 2.5 * tuf.utility(t)).abs() < 1e-9,
                    "{tuf} at {t}"
                );
            }
            assert_eq!(scaled.termination(), tuf.termination());
        }
    }

    #[test]
    fn scaling_rejects_bad_factors() {
        let t = Tuf::step(1.0, ms(1)).unwrap();
        assert!(t.scaled(0.0).is_err());
        assert!(t.scaled(-2.0).is_err());
        assert!(t.scaled(f64::NAN).is_err());
    }

    #[test]
    fn delay_extends_the_plateau() {
        let t = Tuf::linear(10.0, ms(10)).unwrap();
        let d = t.delayed(ms(5)).unwrap();
        assert_eq!(d.utility(ms(3)), 10.0, "inside the new plateau");
        assert!((d.utility(ms(10)) - t.utility(ms(5))).abs() < 1e-9);
        assert_eq!(d.termination(), ms(15));
        // Zero delay is the identity.
        assert_eq!(t.delayed(TimeDelta::ZERO).unwrap(), t);
    }

    #[test]
    fn truncation_cuts_the_tail() {
        let t = Tuf::linear(10.0, ms(10)).unwrap();
        let cut = t.truncated(ms(6)).unwrap();
        assert_eq!(cut.termination(), ms(6));
        assert!((cut.utility(ms(3)) - t.utility(ms(3))).abs() < 1e-9);
        assert_eq!(cut.utility(ms(7)), 0.0);
        // Truncating beyond the end is the identity.
        assert_eq!(t.truncated(ms(20)).unwrap(), t);
        assert!(t.truncated(TimeDelta::ZERO).is_err());
    }

    #[test]
    fn transforms_preserve_non_increase() {
        let base = Tuf::exponential(8.0, ms(2), ms(10)).unwrap();
        for tuf in [
            base.scaled(3.0).unwrap(),
            base.delayed(ms(4)).unwrap(),
            base.truncated(ms(5)).unwrap(),
        ] {
            let mut prev = f64::INFINITY;
            for us in (0..16_000).step_by(250) {
                let u = tuf.utility(TimeDelta::from_micros(us));
                assert!(u <= prev + 1e-9);
                prev = u;
            }
        }
    }

    #[test]
    fn delayed_step_keeps_full_value_through_old_step() {
        let t = Tuf::step(5.0, ms(10)).unwrap();
        let d = t.delayed(ms(5)).unwrap();
        assert_eq!(d.utility(ms(15)), 5.0);
        assert!(d.utility(ms(15) + TimeDelta::from_micros(2)) < 5.0);
    }
}
