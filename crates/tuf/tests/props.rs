#![allow(clippy::expect_used)] // test/demo code: panicking on bad setup is the point

//! Property-based tests for the TUF invariants the schedulers rely on.

use eua_platform::TimeDelta;
use eua_tuf::Tuf;
use proptest::prelude::*;

fn arb_tuf() -> impl Strategy<Value = Tuf> {
    let step = (1.0f64..1e4, 1u64..10_000_000)
        .prop_map(|(u, d)| Tuf::step(u, TimeDelta::from_micros(d)).expect("valid step"));
    let linear = (1.0f64..1e4, 1u64..10_000_000)
        .prop_map(|(u, x)| Tuf::linear(u, TimeDelta::from_micros(x)).expect("valid linear"));
    let exponential = (1.0f64..1e4, 1u64..1_000_000, 1u64..10_000_000).prop_map(|(u, tau, x)| {
        Tuf::exponential(u, TimeDelta::from_micros(tau), TimeDelta::from_micros(x))
            .expect("valid exp")
    });
    let piecewise = (
        1u64..1_000_000,
        proptest::collection::vec(0.0f64..1.0, 1..6),
    )
        .prop_map(|(span, drops)| {
            // Build strictly decreasing utilities over increasing times.
            let mut points = vec![(TimeDelta::ZERO, 1000.0)];
            let mut u = 1000.0;
            for (i, d) in drops.iter().enumerate() {
                u *= d.max(0.01);
                points.push((TimeDelta::from_micros(span * (i as u64 + 1)), u));
            }
            Tuf::piecewise(points).expect("valid piecewise")
        });
    prop_oneof![step, linear, exponential, piecewise]
}

proptest! {
    #[test]
    fn utility_is_non_negative_and_non_increasing(tuf in arb_tuf(), mut offsets in proptest::collection::vec(0u64..20_000_000, 2..40)) {
        offsets.sort_unstable();
        let mut prev = f64::INFINITY;
        for us in offsets {
            let u = tuf.utility(TimeDelta::from_micros(us));
            prop_assert!(u >= 0.0);
            prop_assert!(u.is_finite());
            prop_assert!(u <= prev + 1e-9, "utility increased at {us}us: {u} > {prev}");
            prev = u;
        }
    }

    #[test]
    fn utility_at_zero_is_max(tuf in arb_tuf()) {
        prop_assert!((tuf.utility(TimeDelta::ZERO) - tuf.max_utility()).abs() < 1e-9);
    }

    #[test]
    fn utility_past_termination_is_zero(tuf in arb_tuf(), extra in 1u64..1_000_000) {
        let t = tuf.termination() + TimeDelta::from_micros(extra);
        prop_assert_eq!(tuf.utility(t), 0.0);
    }

    #[test]
    fn critical_time_inverts_nu(tuf in arb_tuf(), nu in 0.0f64..=1.0) {
        let d = tuf.critical_time(nu).expect("valid nu must invert");
        prop_assert!(d <= tuf.termination());
        // Defining property: U(D) ≥ ν·U^max (within float slop).
        prop_assert!(
            tuf.utility(d) + 1e-6 >= nu * tuf.max_utility(),
            "U({d}) = {} < {}", tuf.utility(d), nu * tuf.max_utility()
        );
    }

    #[test]
    fn critical_time_is_maximal(tuf in arb_tuf(), nu in 0.01f64..=1.0) {
        let d = tuf.critical_time(nu).expect("valid nu");
        // One microsecond later must violate the bound (or run off the end).
        if d < tuf.termination() {
            let after = d + TimeDelta::from_micros(1);
            prop_assert!(
                tuf.utility(after) < nu * tuf.max_utility() + 1e-6,
                "critical time {d} is not maximal for nu={nu}"
            );
        }
    }

    #[test]
    fn critical_time_monotone_in_nu(tuf in arb_tuf(), a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let d_lo = tuf.critical_time(lo).expect("valid");
        let d_hi = tuf.critical_time(hi).expect("valid");
        // A stricter requirement can only move the critical time earlier.
        prop_assert!(d_hi <= d_lo, "nu {lo}->{d_lo}, {hi}->{d_hi}");
    }

    #[test]
    fn invalid_nu_rejected(tuf in arb_tuf(), nu in prop_oneof![-1e3f64..-1e-9, 1.0f64 + 1e-9..1e3]) {
        prop_assert_eq!(tuf.critical_time(nu), None);
    }
}
