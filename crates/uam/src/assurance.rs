//! The per-task statistical timeliness requirement `{ν, ρ}`.

use std::fmt;

use crate::error::UamError;

/// The statistical timeliness requirement `{ν, ρ}` of paper §2.2: the task
/// should accrue at least fraction `ν` of its maximum possible utility with
/// probability at least `ρ`.
///
/// `ρ` must lie in `[0, 1)` because the Chebyshev cycle allocation
/// `c = E(Y) + sqrt(ρ/(1−ρ)·Var(Y))` diverges as `ρ → 1`. For step TUFs
/// the paper restricts `ν` to `{0, 1}`.
///
/// # Example
///
/// ```
/// use eua_uam::Assurance;
///
/// # fn main() -> Result<(), eua_uam::UamError> {
/// let a = Assurance::new(0.3, 0.9)?;
/// assert_eq!(a.nu(), 0.3);
/// assert_eq!(a.rho(), 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assurance {
    nu: f64,
    rho: f64,
}

impl Assurance {
    /// Creates a `{ν, ρ}` requirement.
    ///
    /// # Errors
    ///
    /// Returns [`UamError::InvalidUtilityFraction`] if `ν ∉ [0, 1]` and
    /// [`UamError::InvalidProbability`] if `ρ ∉ [0, 1)`.
    pub fn new(nu: f64, rho: f64) -> Result<Self, UamError> {
        if !(0.0..=1.0).contains(&nu) {
            return Err(UamError::InvalidUtilityFraction { value: nu });
        }
        if !(0.0..1.0).contains(&rho) {
            return Err(UamError::InvalidProbability { value: rho });
        }
        Ok(Assurance { nu, rho })
    }

    /// The paper's §5.1 setting for step TUFs: `{ν = 1, ρ = 0.96}`.
    #[must_use]
    pub fn step_default() -> Self {
        Assurance { nu: 1.0, rho: 0.96 }
    }

    /// The paper's §5.2 setting for linear TUFs: `{ν = 0.3, ρ = 0.9}`.
    #[must_use]
    pub fn linear_default() -> Self {
        Assurance { nu: 0.3, rho: 0.9 }
    }

    /// The required utility fraction `ν`.
    #[must_use]
    pub fn nu(&self) -> f64 {
        self.nu
    }

    /// The required probability `ρ`.
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.rho
    }
}

impl fmt::Display for Assurance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{nu={}, rho={}}}", self.nu, self.rho)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_ranges() {
        assert!(Assurance::new(0.0, 0.0).is_ok());
        assert!(Assurance::new(1.0, 0.999).is_ok());
        assert!(matches!(
            Assurance::new(-0.1, 0.5),
            Err(UamError::InvalidUtilityFraction { .. })
        ));
        assert!(matches!(
            Assurance::new(1.5, 0.5),
            Err(UamError::InvalidUtilityFraction { .. })
        ));
        assert!(matches!(
            Assurance::new(0.5, 1.0),
            Err(UamError::InvalidProbability { .. })
        ));
        assert!(matches!(
            Assurance::new(0.5, -0.2),
            Err(UamError::InvalidProbability { .. })
        ));
        assert!(matches!(
            Assurance::new(f64::NAN, 0.5),
            Err(UamError::InvalidUtilityFraction { .. })
        ));
    }

    #[test]
    fn paper_defaults_match_sections() {
        let s = Assurance::step_default();
        assert_eq!((s.nu(), s.rho()), (1.0, 0.96));
        let l = Assurance::linear_default();
        assert_eq!((l.nu(), l.rho()), (0.3, 0.9));
    }

    #[test]
    fn display_shows_both_fields() {
        assert_eq!(
            Assurance::new(0.3, 0.9).unwrap().to_string(),
            "{nu=0.3, rho=0.9}"
        );
    }
}
