//! Sliding-window **demand-bound primitives** for the UAM `⟨a, P⟩`
//! model — the arithmetic core shared by the offline schedulability
//! analysis in `eua-core` and the static verdict engine in
//! `eua-analyze`.
//!
//! A task with per-window demand `C = a·c` cycles, critical time `D`,
//! and window `P` forces
//!
//! ```text
//! dbf(L) = (⌊(L − D)/P⌋ + 1)·C        for L ≥ D, else 0
//! ```
//!
//! cycles of work into *some* interval of length `L` under worst-case
//! (synchronous, back-to-back) UAM arrivals. A speed `f` (cycles/µs)
//! suffices iff `Σ_i dbf_i(L) ≤ f·L` at every absolute critical instant
//! `L = D_i + k·P_i` up to the standard busy-period bound — the
//! Baruah–Rosier–Howell processor-demand criterion. [`demand_witness`]
//! runs that scan and, unlike a boolean test, reports *which* interval
//! overflows (the witness window) or how far it scanned before giving
//! up, which is what a diagnostic front end needs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Absolute slop for comparisons of cycle counts against `f·L`.
const TOL: f64 = 1e-9;

/// One task's demand curve: the three numbers the demand-bound function
/// depends on. Plain `f64`/`u64` so raw (not-yet-validated) scenario
/// data can be analyzed without constructing simulator types.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandCurve {
    /// Worst-case demand per window, `C = a·c`, in cycles.
    pub window_demand: f64,
    /// Critical time `D` in µs: every window's demand must complete
    /// within `D` of the window's start.
    pub critical_us: u64,
    /// UAM window length `P` in µs.
    pub window_us: u64,
}

impl DemandCurve {
    /// The curve's demand in an interval of length `interval_us`:
    /// `(⌊(L − D)/P⌋ + 1)·C` for `L ≥ D`, else `0`.
    ///
    /// A zero window with positive demand yields `+∞` (unbounded
    /// arrival rate); callers normally diagnose `P = 0` before asking.
    #[must_use]
    pub fn demand_in(&self, interval_us: u64) -> f64 {
        if interval_us < self.critical_us || self.window_demand <= 0.0 {
            return 0.0;
        }
        if self.window_us == 0 {
            return f64::INFINITY;
        }
        #[allow(clippy::cast_precision_loss)]
        let windows = (((interval_us - self.critical_us) / self.window_us) + 1) as f64;
        windows * self.window_demand
    }

    /// Long-run processor demand `C/P` in cycles/µs (`+∞` for `P = 0`).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.window_us == 0 {
            if self.window_demand > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            #[allow(clippy::cast_precision_loss)]
            let p = self.window_us as f64;
            self.window_demand.max(0.0) / p
        }
    }
}

/// Total processor demand `h(L) = Σ_i dbf_i(L)` in cycles.
#[must_use]
pub fn total_demand(curves: &[DemandCurve], interval_us: u64) -> f64 {
    curves.iter().map(|c| c.demand_in(interval_us)).sum()
}

/// Total long-run utilization `Σ_i C_i/P_i` in cycles/µs.
#[must_use]
pub fn total_utilization(curves: &[DemandCurve]) -> f64 {
    curves.iter().map(DemandCurve::utilization).sum()
}

/// Outcome of the demand-bound scan at one speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DemandVerdict {
    /// `h(L) ≤ f·L` at every critical instant: the allocation-level
    /// demand fits at this speed.
    Fits,
    /// A concrete interval whose forced demand exceeds capacity.
    Overload {
        /// Witness interval length `L` in µs.
        interval_us: u64,
        /// Forced demand `h(L)` in cycles (`> f·L`).
        demand_cycles: f64,
    },
    /// The scan hit its point budget before clearing the busy-period
    /// bound; no verdict either way.
    Truncated {
        /// The largest critical instant that was checked, in µs.
        scanned_us: u64,
    },
}

/// Runs the Baruah–Rosier–Howell processor-demand scan at `speed`
/// cycles/µs, checking `h(L) ≤ speed·L` at every absolute critical
/// instant `L = D_i + k·P_i` up to the busy-period bound
/// `L* = Σ (P_i − D_i)⁺·U_i / (speed − U)` (and at least `max D_i`).
///
/// When the total utilization `U` exceeds `speed`, no finite scan is
/// needed: `h(L) > U·L − Σ D_i·U_i` for all `L`, so any critical
/// instant past `Σ D_i·U_i / (U − speed)` is a witness and one is
/// returned directly.
///
/// `max_points` bounds how many critical instants the underloaded scan
/// may visit before answering [`DemandVerdict::Truncated`]; pass
/// `usize::MAX` for an exhaustive (always-decisive) scan.
#[must_use]
pub fn demand_witness(curves: &[DemandCurve], speed: f64, max_points: usize) -> DemandVerdict {
    let active: Vec<DemandCurve> = curves
        .iter()
        .copied()
        .filter(|c| c.window_demand > 0.0)
        .collect();
    if active.is_empty() {
        return DemandVerdict::Fits;
    }
    // Degenerate curves make the utilization infinite; the earliest
    // affected critical instant is the witness.
    if let Some(c) = active
        .iter()
        .filter(|c| c.window_us == 0 || !c.window_demand.is_finite())
        .min_by_key(|c| c.critical_us)
    {
        return DemandVerdict::Overload {
            interval_us: c.critical_us,
            demand_cycles: total_demand(&active, c.critical_us),
        };
    }

    let utilization = total_utilization(&active);
    #[allow(clippy::cast_precision_loss)]
    let offset_mass: f64 = active
        .iter()
        .map(|c| c.critical_us as f64 * c.utilization())
        .sum();

    if utilization > speed {
        return overload_witness(&active, speed, utilization, offset_mass);
    }

    // Busy-period bound; `speed == U` degenerates to `max D_i` exactly
    // as the boolean test in `eua-core` always has.
    let slack_mass: f64 = active
        .iter()
        .map(|c| {
            #[allow(clippy::cast_precision_loss)]
            let slack = (c.window_us as f64 - c.critical_us as f64).max(0.0);
            slack * c.utilization()
        })
        .sum();
    let l_star = if speed > utilization {
        slack_mass / (speed - utilization)
    } else {
        0.0
    };
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let l_max = active
        .iter()
        .map(|c| c.critical_us)
        .max()
        .unwrap_or(0)
        .max(l_star.min(u64::MAX as f64 / 2.0).ceil() as u64);

    // Merge the per-curve critical instants ascending.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = active
        .iter()
        .enumerate()
        .map(|(i, c)| Reverse((c.critical_us, i)))
        .collect();
    let mut visited = 0usize;
    let mut last_checked = 0u64;
    while let Some(Reverse((l, i))) = heap.pop() {
        if l <= l_max {
            if let Some(next) = l.checked_add(active[i].window_us) {
                heap.push(Reverse((next, i)));
            }
        } else {
            continue;
        }
        if l == last_checked && visited > 0 {
            continue; // coincident instants need one check only
        }
        if visited >= max_points {
            return DemandVerdict::Truncated {
                scanned_us: last_checked,
            };
        }
        visited += 1;
        last_checked = l;
        let demand = total_demand(&active, l);
        #[allow(clippy::cast_precision_loss)]
        if demand > speed * l as f64 + TOL {
            return DemandVerdict::Overload {
                interval_us: l,
                demand_cycles: demand,
            };
        }
    }
    DemandVerdict::Fits
}

/// Witness construction for the sustained-overload case `U > speed`:
/// since `⌊x⌋ + 1 > x`, `h(L) > U·L − Σ D_i·U_i`, so every critical
/// instant at or past `L₀ = (Σ D_i·U_i + 1)/(U − speed)` overflows.
fn overload_witness(
    active: &[DemandCurve],
    speed: f64,
    utilization: f64,
    offset_mass: f64,
) -> DemandVerdict {
    let mut l0 = ((offset_mass + 1.0) / (utilization - speed)).max(1.0);
    for _ in 0..128 {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let floor = l0.min(u64::MAX as f64 / 4.0).ceil() as u64;
        // The earliest critical instant ≥ floor across all curves.
        let l = active
            .iter()
            .map(|c| {
                if floor <= c.critical_us {
                    c.critical_us
                } else {
                    let k = (floor - c.critical_us).div_ceil(c.window_us);
                    c.critical_us.saturating_add(k.saturating_mul(c.window_us))
                }
            })
            .min()
            .unwrap_or(floor);
        let demand = total_demand(active, l);
        #[allow(clippy::cast_precision_loss)]
        if demand > speed * l as f64 + TOL {
            return DemandVerdict::Overload {
                interval_us: l,
                demand_cycles: demand,
            };
        }
        // Mathematically unreachable; step past l and retry to stay
        // total in the face of extreme float cancellation.
        #[allow(clippy::cast_precision_loss)]
        {
            l0 = l as f64 * 2.0 + 1.0;
        }
    }
    DemandVerdict::Truncated {
        scanned_us: u64::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(c: f64, d: u64, p: u64) -> DemandCurve {
        DemandCurve {
            window_demand: c,
            critical_us: d,
            window_us: p,
        }
    }

    #[test]
    fn demand_counts_whole_windows() {
        let c = curve(200_000.0, 10_000, 10_000);
        assert_eq!(c.demand_in(9_999), 0.0);
        assert_eq!(c.demand_in(10_000), 200_000.0);
        assert_eq!(c.demand_in(19_999), 200_000.0);
        assert_eq!(c.demand_in(20_000), 400_000.0);
    }

    #[test]
    fn utilization_is_demand_over_window() {
        assert!((curve(200_000.0, 5_000, 10_000).utilization() - 20.0).abs() < 1e-12);
        assert_eq!(curve(1.0, 0, 0).utilization(), f64::INFINITY);
        assert_eq!(curve(0.0, 0, 0).utilization(), 0.0);
    }

    #[test]
    fn implicit_deadline_set_fits_at_utilization_boundary() {
        // 300k/10ms + 500k/25ms = 30 + 20 = 50 cycles/µs.
        let curves = [
            curve(300_000.0, 10_000, 10_000),
            curve(500_000.0, 25_000, 25_000),
        ];
        assert_eq!(
            demand_witness(&curves, 50.0, usize::MAX),
            DemandVerdict::Fits
        );
        match demand_witness(&curves, 49.0, usize::MAX) {
            DemandVerdict::Overload {
                interval_us,
                demand_cycles,
            } => {
                assert!(demand_cycles > 49.0 * interval_us as f64);
                assert_eq!(total_demand(&curves, interval_us), demand_cycles);
            }
            other => panic!("expected a witness, got {other:?}"),
        }
    }

    #[test]
    fn constrained_deadline_needs_more_than_utilization() {
        // 400k cycles per 10 ms window, all due within the first 5 ms.
        let curves = [curve(400_000.0, 5_000, 10_000)];
        assert_eq!(
            demand_witness(&curves, 80.0, usize::MAX),
            DemandVerdict::Fits
        );
        match demand_witness(&curves, 79.0, usize::MAX) {
            DemandVerdict::Overload { interval_us, .. } => assert_eq!(interval_us, 5_000),
            other => panic!("expected the first critical instant, got {other:?}"),
        }
    }

    #[test]
    fn sustained_overload_witness_is_checked_not_assumed() {
        // U = 30 cycles/µs against speed 29.9: the analytic jump must
        // land on a genuine critical instant that overflows.
        let curves = [curve(300_000.0, 10_000, 10_000)];
        match demand_witness(&curves, 29.9, usize::MAX) {
            DemandVerdict::Overload {
                interval_us,
                demand_cycles,
            } => {
                assert!(demand_cycles > 29.9 * interval_us as f64 + 1e-9);
                assert_eq!((interval_us - 10_000) % 10_000, 0, "critical instant shape");
            }
            other => panic!("expected overload, got {other:?}"),
        }
    }

    #[test]
    fn zero_window_is_an_immediate_overload() {
        let curves = [curve(100.0, 1_000, 0)];
        match demand_witness(&curves, 100.0, usize::MAX) {
            DemandVerdict::Overload { interval_us, .. } => assert_eq!(interval_us, 1_000),
            other => panic!("expected overload, got {other:?}"),
        }
    }

    #[test]
    fn point_budget_yields_truncated() {
        // Near-critical utilization stretches the busy period: 2 points
        // are nowhere near enough, and the scan must say so.
        let curves = [
            curve(300_000.0, 10_000, 10_000),
            curve(499_999.0, 25_000, 25_000),
        ];
        match demand_witness(&curves, 50.0, 2) {
            DemandVerdict::Truncated { scanned_us } => assert!(scanned_us >= 10_000),
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_zero_demand_sets_fit() {
        assert_eq!(demand_witness(&[], 1.0, usize::MAX), DemandVerdict::Fits);
        let idle = [curve(0.0, 1_000, 1_000)];
        assert_eq!(demand_witness(&idle, 1.0, usize::MAX), DemandVerdict::Fits);
    }
}
