//! Stochastic cycle-demand models and the Chebyshev cycle allocation.
//!
//! EUA\* deliberately plans with **statistical estimates** of demand (mean
//! and variance) instead of worst-case execution cycles (paper §2.3). This
//! module provides the demand distributions used by the evaluation, the
//! Welford online profiler that would estimate them from observations, and
//! the one-sided Chebyshev (Cantelli) bound that converts `{mean, variance,
//! ρ}` into the per-job cycle allocation of §3.1:
//!
//! ```text
//! c = E(Y) + sqrt( ρ/(1−ρ) · Var(Y) )   ⟹   Pr[Y < c] ≥ ρ
//! ```

use std::fmt;

use eua_platform::Cycles;
use rand::Rng;

use crate::error::UamError;

fn validate_param(name: &'static str, value: f64) -> Result<(), UamError> {
    if !value.is_finite() || value < 0.0 {
        return Err(UamError::InvalidDemandParameter { name, value });
    }
    Ok(())
}

/// A distribution of per-job processor-cycle demand.
///
/// All variants expose an exact mean and variance (what the scheduler
/// plans with) and can be sampled (what the simulator charges the job
/// with). Samples are clamped to at least one cycle — a job that needs no
/// work would never appear at the scheduler.
///
/// # Example
///
/// ```
/// use eua_uam::demand::DemandModel;
///
/// # fn main() -> Result<(), eua_uam::UamError> {
/// let d = DemandModel::normal(500_000.0, 500_000.0)?; // Var = E, as in §5
/// assert_eq!(d.mean(), 500_000.0);
/// let scaled = d.scaled(2.0);
/// assert_eq!(scaled.mean(), 1_000_000.0);
/// // Variance scales with k² so the coefficient of variation is preserved.
/// assert_eq!(scaled.variance(), 4.0 * 500_000.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum DemandModel {
    /// Every job demands exactly this many cycles.
    Deterministic {
        /// The fixed demand.
        cycles: f64,
    },
    /// Normally distributed demand, truncated below at one cycle when
    /// sampled.
    Normal {
        /// Mean demand `E(Y)` in cycles.
        mean: f64,
        /// Demand variance `Var(Y)` in cycles².
        variance: f64,
    },
    /// Uniformly distributed demand on `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound in cycles.
        lo: f64,
        /// Inclusive upper bound in cycles.
        hi: f64,
    },
    /// Pareto (heavy-tailed) demand with scale `x_m` and shape `alpha`.
    ///
    /// Chebyshev allocation is exact-moment based, so a heavy tail makes
    /// allocation overruns *common* — the failure-injection counterpart to
    /// the paper's well-behaved normal demands. Requires `alpha > 2` so
    /// both moments exist.
    Pareto {
        /// Scale (minimum demand) in cycles.
        scale: f64,
        /// Tail index; larger is lighter-tailed.
        alpha: f64,
    },
}

impl DemandModel {
    /// A deterministic demand of `cycles`.
    ///
    /// # Errors
    ///
    /// Returns an error if `cycles` is negative or non-finite.
    pub fn deterministic(cycles: f64) -> Result<Self, UamError> {
        validate_param("mean", cycles)?;
        Ok(DemandModel::Deterministic { cycles })
    }

    /// A normal demand with the given mean and variance. The paper's
    /// experiments use `variance = mean` before load scaling.
    ///
    /// # Errors
    ///
    /// Returns an error if either parameter is negative or non-finite.
    pub fn normal(mean: f64, variance: f64) -> Result<Self, UamError> {
        validate_param("mean", mean)?;
        validate_param("variance", variance)?;
        Ok(DemandModel::Normal { mean, variance })
    }

    /// A uniform demand on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns an error if a bound is negative or non-finite, or `lo > hi`.
    pub fn uniform(lo: f64, hi: f64) -> Result<Self, UamError> {
        validate_param("lo", lo)?;
        validate_param("hi", hi)?;
        if lo > hi {
            return Err(UamError::EmptyDemandRange);
        }
        Ok(DemandModel::Uniform { lo, hi })
    }

    /// A Pareto demand with the given mean and tail index `alpha`.
    ///
    /// The scale is derived as `x_m = mean·(alpha − 1)/alpha`.
    ///
    /// # Errors
    ///
    /// Returns an error if `mean` is invalid or `alpha ≤ 2` (the variance
    /// the Chebyshev allocation needs would not exist).
    pub fn pareto(mean: f64, alpha: f64) -> Result<Self, UamError> {
        validate_param("mean", mean)?;
        if !alpha.is_finite() || alpha <= 2.0 {
            return Err(UamError::InvalidDemandParameter {
                name: "alpha",
                value: alpha,
            });
        }
        Ok(DemandModel::Pareto {
            scale: mean * (alpha - 1.0) / alpha,
            alpha,
        })
    }

    /// The mean demand `E(Y)` in cycles.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            DemandModel::Deterministic { cycles } => cycles,
            DemandModel::Normal { mean, .. } => mean,
            DemandModel::Uniform { lo, hi } => 0.5 * (lo + hi),
            DemandModel::Pareto { scale, alpha } => alpha * scale / (alpha - 1.0),
        }
    }

    /// The demand variance `Var(Y)` in cycles².
    #[must_use]
    pub fn variance(&self) -> f64 {
        match *self {
            DemandModel::Deterministic { .. } => 0.0,
            DemandModel::Normal { variance, .. } => variance,
            DemandModel::Uniform { lo, hi } => {
                let w = hi - lo;
                w * w / 12.0
            }
            DemandModel::Pareto { scale, alpha } => {
                scale * scale * alpha / ((alpha - 1.0) * (alpha - 1.0) * (alpha - 2.0))
            }
        }
    }

    /// The paper's load-scaling transform: mean scaled by `k`, variance by
    /// `k²` (§5: "E(Y_i)s are scaled by a constant k, and Var(Y_i)s are
    /// scaled by k²").
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative or non-finite — scaling factors come from
    /// the load solver, not user input.
    #[must_use]
    pub fn scaled(&self, k: f64) -> Self {
        assert!(
            k.is_finite() && k >= 0.0,
            "scale factor must be finite and non-negative"
        );
        match *self {
            DemandModel::Deterministic { cycles } => {
                DemandModel::Deterministic { cycles: cycles * k }
            }
            DemandModel::Normal { mean, variance } => DemandModel::Normal {
                mean: mean * k,
                variance: variance * k * k,
            },
            DemandModel::Uniform { lo, hi } => DemandModel::Uniform {
                lo: lo * k,
                hi: hi * k,
            },
            DemandModel::Pareto { scale, alpha } => {
                // Pareto is scale-family: mean ×k and variance ×k² follow
                // from scaling x_m alone.
                DemandModel::Pareto {
                    scale: scale * k,
                    alpha,
                }
            }
        }
    }

    /// Draws one job's actual demand. Clamped to at least one cycle.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Cycles {
        let raw = match *self {
            DemandModel::Deterministic { cycles } => cycles,
            DemandModel::Normal { mean, variance } => mean + variance.sqrt() * standard_normal(rng),
            DemandModel::Uniform { lo, hi } => {
                if lo == hi {
                    lo
                } else {
                    rng.gen_range(lo..=hi)
                }
            }
            DemandModel::Pareto { scale, alpha } => {
                let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
                scale * u.powf(-1.0 / alpha)
            }
        };
        Cycles::new(raw.round().max(1.0) as u64)
    }

    /// The Chebyshev (Cantelli) cycle allocation `c` of §3.1 such that
    /// `Pr[Y < c] ≥ ρ`, rounded up to a whole cycle.
    ///
    /// # Errors
    ///
    /// Returns [`UamError::InvalidProbability`] if `ρ ∉ [0, 1)`.
    pub fn chebyshev_allocation(&self, rho: f64) -> Result<Cycles, UamError> {
        if !(0.0..1.0).contains(&rho) {
            return Err(UamError::InvalidProbability { value: rho });
        }
        let c = self.mean() + (rho / (1.0 - rho) * self.variance()).sqrt();
        Ok(Cycles::new(c.ceil().max(1.0) as u64))
    }
}

impl fmt::Display for DemandModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DemandModel::Deterministic { cycles } => write!(f, "det({cycles}cy)"),
            DemandModel::Normal { mean, variance } => write!(f, "N({mean}, {variance})"),
            DemandModel::Uniform { lo, hi } => write!(f, "U[{lo}, {hi}]"),
            DemandModel::Pareto { scale, alpha } => write!(f, "Pareto({scale}, {alpha})"),
        }
    }
}

/// One draw from the standard normal distribution via Box–Muller.
///
/// Implemented here because the approved dependency set includes `rand`
/// but not `rand_distr`.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1] to keep ln(u1) finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Welford's online mean/variance estimator — the "online profiling" the
/// paper assumes supplies `E(Y)` and `Var(Y)` (§2.3).
///
/// # Example
///
/// ```
/// use eua_platform::Cycles;
/// use eua_uam::demand::DemandProfiler;
///
/// let mut p = DemandProfiler::new();
/// for c in [100u64, 110, 90, 105, 95] {
///     p.record(Cycles::new(c));
/// }
/// assert_eq!(p.count(), 5);
/// assert!((p.mean() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DemandProfiler {
    count: u64,
    mean: f64,
    m2: f64,
}

impl DemandProfiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        DemandProfiler::default()
    }

    /// Records one observed job demand.
    pub fn record(&mut self, cycles: Cycles) {
        self.count += 1;
        let x = cycles.as_f64();
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running sample mean; `0` with no observations.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The running (population) variance; `0` with fewer than two
    /// observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Converts the profile into a [`DemandModel::Normal`] with the
    /// estimated moments.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two observations have been recorded
    /// (the variance estimate would be degenerate).
    pub fn to_model(&self) -> Result<DemandModel, UamError> {
        if self.count < 2 {
            return Err(UamError::InvalidDemandParameter {
                name: "variance",
                value: f64::NAN,
            });
        }
        DemandModel::normal(self.mean(), self.variance())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_validate() {
        assert!(DemandModel::normal(-1.0, 1.0).is_err());
        assert!(DemandModel::normal(1.0, f64::INFINITY).is_err());
        assert!(DemandModel::uniform(5.0, 1.0).is_err());
        assert!(DemandModel::deterministic(f64::NAN).is_err());
    }

    #[test]
    fn moments_match_definitions() {
        let n = DemandModel::normal(100.0, 25.0).unwrap();
        assert_eq!(n.mean(), 100.0);
        assert_eq!(n.variance(), 25.0);
        let u = DemandModel::uniform(0.0, 12.0).unwrap();
        assert_eq!(u.mean(), 6.0);
        assert_eq!(u.variance(), 12.0);
        let d = DemandModel::deterministic(7.0).unwrap();
        assert_eq!(d.mean(), 7.0);
        assert_eq!(d.variance(), 0.0);
    }

    #[test]
    fn scaling_is_k_and_k_squared() {
        let n = DemandModel::normal(100.0, 100.0).unwrap().scaled(3.0);
        assert_eq!(n.mean(), 300.0);
        assert_eq!(n.variance(), 900.0);
        let u = DemandModel::uniform(10.0, 20.0).unwrap().scaled(2.0);
        assert_eq!(u.mean(), 30.0);
        assert!((u.variance() - 400.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn chebyshev_matches_closed_form() {
        let m = DemandModel::normal(1_000.0, 400.0).unwrap();
        // c = 1000 + sqrt(0.96/0.04 · 400) = 1000 + sqrt(9600) ≈ 1097.98.
        let c = m.chebyshev_allocation(0.96).unwrap();
        assert_eq!(c.get(), 1_098);
        // ρ = 0: allocate just the mean.
        assert_eq!(m.chebyshev_allocation(0.0).unwrap().get(), 1_000);
        assert!(m.chebyshev_allocation(1.0).is_err());
        assert!(m.chebyshev_allocation(-0.5).is_err());
    }

    #[test]
    fn chebyshev_bound_holds_empirically_for_normal() {
        // Cantelli is conservative, so the empirical quantile must exceed ρ.
        let m = DemandModel::normal(10_000.0, 10_000.0).unwrap();
        let c = m.chebyshev_allocation(0.9).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let within = (0..n).filter(|_| m.sample(&mut rng) < c).count();
        assert!(
            within as f64 / n as f64 > 0.9,
            "only {within}/{n} samples under the allocation"
        );
    }

    #[test]
    fn normal_sampling_has_right_moments() {
        let m = DemandModel::normal(50_000.0, 250_000.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let mut prof = DemandProfiler::new();
        for _ in 0..50_000 {
            prof.record(m.sample(&mut rng));
        }
        assert!(
            (prof.mean() - 50_000.0).abs() < 50.0,
            "mean {}",
            prof.mean()
        );
        let std_err = (prof.variance() - 250_000.0).abs() / 250_000.0;
        assert!(std_err < 0.05, "variance {}", prof.variance());
    }

    #[test]
    fn samples_never_below_one_cycle() {
        let m = DemandModel::normal(1.0, 10_000.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert!(m.sample(&mut rng).get() >= 1);
        }
        let z = DemandModel::deterministic(0.0).unwrap();
        assert_eq!(z.sample(&mut rng).get(), 1);
    }

    #[test]
    fn uniform_sampling_stays_in_range() {
        let m = DemandModel::uniform(100.0, 200.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let s = m.sample(&mut rng).get();
            assert!((100..=200).contains(&s), "sample {s} out of range");
        }
        // Degenerate range.
        let d = DemandModel::uniform(5.0, 5.0).unwrap();
        assert_eq!(d.sample(&mut rng).get(), 5);
    }

    #[test]
    fn profiler_tracks_mean_and_variance() {
        let mut p = DemandProfiler::new();
        assert_eq!(p.mean(), 0.0);
        assert_eq!(p.variance(), 0.0);
        assert!(p.to_model().is_err());
        for c in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            p.record(Cycles::new(c));
        }
        assert_eq!(p.count(), 8);
        assert!((p.mean() - 5.0).abs() < 1e-12);
        assert!((p.variance() - 4.0).abs() < 1e-12);
        let model = p.to_model().unwrap();
        assert!((model.mean() - 5.0).abs() < 1e-12);
        assert!((model.variance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn pareto_moments_match_closed_forms() {
        let m = DemandModel::pareto(1_000.0, 3.0).unwrap();
        assert!((m.mean() - 1_000.0).abs() < 1e-9);
        // Var = x_m²·α/((α−1)²(α−2)) with x_m = 1000·2/3.
        let xm: f64 = 1_000.0 * 2.0 / 3.0;
        let var = xm * xm * 3.0 / (4.0 * 1.0);
        assert!((m.variance() - var).abs() < 1e-6);
        assert!(DemandModel::pareto(1_000.0, 2.0).is_err());
        assert!(DemandModel::pareto(1_000.0, f64::NAN).is_err());
        assert!(DemandModel::pareto(-1.0, 3.0).is_err());
    }

    #[test]
    fn pareto_sampling_matches_mean_and_floors_at_scale() {
        let m = DemandModel::pareto(50_000.0, 3.0).unwrap();
        let DemandModel::Pareto { scale, .. } = m else {
            panic!("pareto")
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let mut prof = DemandProfiler::new();
        for _ in 0..100_000 {
            let s = m.sample(&mut rng);
            assert!(s.as_f64() + 1.0 >= scale, "sample below the Pareto scale");
            prof.record(s);
        }
        let rel = (prof.mean() - 50_000.0).abs() / 50_000.0;
        assert!(rel < 0.02, "sample mean off by {:.1}%", rel * 100.0);
    }

    #[test]
    fn pareto_scaling_scales_both_moments() {
        let m = DemandModel::pareto(10_000.0, 4.0).unwrap().scaled(3.0);
        assert!((m.mean() - 30_000.0).abs() < 1e-6);
        let unscaled = DemandModel::pareto(10_000.0, 4.0).unwrap();
        assert!((m.variance() - 9.0 * unscaled.variance()).abs() < 1e-3);
    }

    #[test]
    fn pareto_overruns_chebyshev_more_often_than_normal() {
        // Same mean and variance, but the heavy tail concentrates its
        // mass differently: the share of samples above the mean+k·std
        // allocation behaves very differently. This is the failure mode
        // the stress tests inject.
        let p = DemandModel::pareto(10_000.0, 2.5).unwrap();
        let n = DemandModel::normal(p.mean(), p.variance()).unwrap();
        let rho = 0.96;
        let cap_p = p.chebyshev_allocation(rho).unwrap();
        let cap_n = n.chebyshev_allocation(rho).unwrap();
        assert_eq!(cap_p, cap_n, "same moments, same allocation");
        let mut rng = SmallRng::seed_from_u64(77);
        let trials = 50_000;
        let over_p = (0..trials).filter(|_| p.sample(&mut rng) >= cap_p).count();
        let over_n = (0..trials).filter(|_| n.sample(&mut rng) >= cap_n).count();
        // Cantelli still holds for both (≤ 4%), but the tail shapes are
        // clearly distinct.
        assert!(over_p as f64 / trials as f64 <= 0.04 + 0.01);
        assert!(over_n as f64 / trials as f64 <= 0.04 + 0.01);
        assert_ne!(over_p, over_n);
    }

    #[test]
    fn display_names_distributions() {
        assert_eq!(
            DemandModel::deterministic(3.0).unwrap().to_string(),
            "det(3cy)"
        );
        assert_eq!(
            DemandModel::normal(1.0, 2.0).unwrap().to_string(),
            "N(1, 2)"
        );
        assert_eq!(
            DemandModel::uniform(1.0, 2.0).unwrap().to_string(),
            "U[1, 2]"
        );
    }
}
