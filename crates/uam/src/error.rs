//! Error type for arrival-model and demand-model construction.

use std::error::Error;
use std::fmt;

/// Errors produced by UAM specs, generators, and demand models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum UamError {
    /// The arrival bound `a` was zero — a task that never arrives.
    ZeroArrivalBound,
    /// The sliding window `P` was zero.
    ZeroWindow,
    /// A demand-model parameter was negative or non-finite.
    InvalidDemandParameter {
        /// Which parameter (`"mean"`, `"variance"`, `"lo"`, `"hi"`).
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A uniform demand range had `lo > hi`.
    EmptyDemandRange,
    /// An assurance probability `ρ` outside `[0, 1)` (Chebyshev allocation
    /// diverges as `ρ → 1`).
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// An assurance fraction `ν` outside `[0, 1]`.
    InvalidUtilityFraction {
        /// The offending value.
        value: f64,
    },
    /// A generator parameter was invalid (e.g. zero Poisson rate).
    InvalidGeneratorParameter {
        /// Which parameter.
        name: &'static str,
    },
}

impl fmt::Display for UamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UamError::ZeroArrivalBound => write!(f, "uam arrival bound a must be at least 1"),
            UamError::ZeroWindow => write!(f, "uam sliding window p must be positive"),
            UamError::InvalidDemandParameter { name, value } => {
                write!(
                    f,
                    "demand parameter {name} must be finite and non-negative, got {value}"
                )
            }
            UamError::EmptyDemandRange => write!(f, "uniform demand range must satisfy lo <= hi"),
            UamError::InvalidProbability { value } => {
                write!(f, "assurance probability must lie in [0, 1), got {value}")
            }
            UamError::InvalidUtilityFraction { value } => {
                write!(f, "utility fraction must lie in [0, 1], got {value}")
            }
            UamError::InvalidGeneratorParameter { name } => {
                write!(f, "invalid generator parameter {name}")
            }
        }
    }
}

impl Error for UamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        for e in [
            UamError::ZeroArrivalBound,
            UamError::ZeroWindow,
            UamError::InvalidDemandParameter {
                name: "mean",
                value: -1.0,
            },
            UamError::EmptyDemandRange,
            UamError::InvalidProbability { value: 1.0 },
            UamError::InvalidUtilityFraction { value: 7.0 },
            UamError::InvalidGeneratorParameter { name: "rate" },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<UamError>();
    }
}
