//! Arrival-pattern generators that provably comply with a UAM descriptor.
//!
//! Every pattern generates traces satisfying its associated `⟨a, P⟩`
//! descriptor **by construction** (enforced with a debug assertion and
//! verified by tests), so simulations never feed the scheduler an illegal
//! adversary. The patterns cover the space the paper's evaluation exercises:
//!
//! * [`ArrivalPattern::Periodic`] — the `⟨1, P⟩` special case (§5.1);
//! * [`ArrivalPattern::Sporadic`] — random inter-arrival ≥ P;
//! * [`ArrivalPattern::WindowBurst`] — `a` simultaneous arrivals at each
//!   window boundary, the strongest UAM adversary (§5.2's Fig. 3 sweep);
//! * [`ArrivalPattern::ConstrainedPoisson`] — Poisson arrivals throttled to
//!   the UAM bound, modelling "arbitrary" aperiodic traffic.

use eua_platform::{SimTime, TimeDelta};
use rand::Rng;

use crate::error::UamError;
use crate::spec::UamSpec;
use crate::trace::ArrivalTrace;

/// A generator of UAM-compliant arrival traces for a single task.
///
/// # Example
///
/// ```
/// use eua_platform::TimeDelta;
/// use eua_uam::generator::ArrivalPattern;
/// use eua_uam::UamSpec;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), eua_uam::UamError> {
/// let spec = UamSpec::new(3, TimeDelta::from_millis(10))?;
/// let pattern = ArrivalPattern::window_burst(spec)?;
/// let mut rng = SmallRng::seed_from_u64(1);
/// let trace = pattern.generate(TimeDelta::from_millis(100), &mut rng);
/// assert!(trace.complies_with(&spec));
/// assert_eq!(trace.len(), 30); // 10 windows × 3 arrivals
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArrivalPattern {
    /// Strictly periodic arrivals at `0, P, 2P, …` (plus an optional fixed
    /// phase) — the `⟨1, P⟩` special case.
    Periodic {
        /// The `⟨1, P⟩` descriptor.
        spec: UamSpec,
        /// Offset of the first arrival.
        phase: TimeDelta,
    },
    /// Sporadic arrivals: inter-arrival time `P + U[0, max_extra]`.
    Sporadic {
        /// The `⟨1, P⟩` descriptor (P = minimum separation).
        spec: UamSpec,
        /// Upper bound of the uniformly distributed extra delay.
        max_extra: TimeDelta,
    },
    /// `a` simultaneous arrivals at every window boundary `0, P, 2P, …` —
    /// the maximal UAM adversary, and the shape behind the paper's Fig. 3.
    WindowBurst {
        /// The `⟨a, P⟩` descriptor.
        spec: UamSpec,
    },
    /// A burst of random size `U[1, a]` at every window boundary.
    RandomBurst {
        /// The `⟨a, P⟩` descriptor.
        spec: UamSpec,
    },
    /// Poisson arrivals at `rate` arrivals per window, delayed where
    /// necessary so that any `a + 1` consecutive arrivals span at least `P`.
    ConstrainedPoisson {
        /// The `⟨a, P⟩` descriptor.
        spec: UamSpec,
        /// Mean arrivals per window `P` **before** throttling.
        rate_per_window: f64,
    },
    /// An on/off (Markov-style) source: alternating active phases of
    /// `on_windows` maximal bursts and silent phases of `off_windows`
    /// windows — the "transient and sustained overloads" shape of the
    /// paper's motivating systems.
    OnOff {
        /// The `⟨a, P⟩` descriptor.
        spec: UamSpec,
        /// Number of consecutive bursty windows per active phase.
        on_windows: u32,
        /// Number of consecutive silent windows per idle phase.
        off_windows: u32,
    },
}

impl ArrivalPattern {
    /// A strictly periodic pattern with zero phase.
    ///
    /// # Errors
    ///
    /// Returns [`UamError::ZeroWindow`] if `period` is zero.
    pub fn periodic(period: TimeDelta) -> Result<Self, UamError> {
        Ok(ArrivalPattern::Periodic {
            spec: UamSpec::periodic(period)?,
            phase: TimeDelta::ZERO,
        })
    }

    /// A strictly periodic pattern whose first arrival is at `phase`.
    ///
    /// # Errors
    ///
    /// Returns [`UamError::ZeroWindow`] if `period` is zero.
    pub fn periodic_with_phase(period: TimeDelta, phase: TimeDelta) -> Result<Self, UamError> {
        Ok(ArrivalPattern::Periodic {
            spec: UamSpec::periodic(period)?,
            phase,
        })
    }

    /// A sporadic pattern with minimum separation `min_separation` and a
    /// uniformly random extra delay up to `max_extra`.
    ///
    /// # Errors
    ///
    /// Returns [`UamError::ZeroWindow`] if `min_separation` is zero.
    pub fn sporadic(min_separation: TimeDelta, max_extra: TimeDelta) -> Result<Self, UamError> {
        Ok(ArrivalPattern::Sporadic {
            spec: UamSpec::periodic(min_separation)?,
            max_extra,
        })
    }

    /// The maximal adversary for `spec`: `a` simultaneous arrivals per
    /// window.
    ///
    /// # Errors
    ///
    /// Currently infallible for a valid [`UamSpec`]; the `Result` reserves
    /// room for pattern-specific validation.
    pub fn window_burst(spec: UamSpec) -> Result<Self, UamError> {
        Ok(ArrivalPattern::WindowBurst { spec })
    }

    /// Bursts of random size `U[1, a]` per window.
    ///
    /// # Errors
    ///
    /// Currently infallible for a valid [`UamSpec`].
    pub fn random_burst(spec: UamSpec) -> Result<Self, UamError> {
        Ok(ArrivalPattern::RandomBurst { spec })
    }

    /// UAM-throttled Poisson arrivals.
    ///
    /// # Errors
    ///
    /// Returns [`UamError::InvalidGeneratorParameter`] if `rate_per_window`
    /// is non-positive or non-finite.
    pub fn constrained_poisson(spec: UamSpec, rate_per_window: f64) -> Result<Self, UamError> {
        if !rate_per_window.is_finite() || rate_per_window <= 0.0 {
            return Err(UamError::InvalidGeneratorParameter {
                name: "rate_per_window",
            });
        }
        Ok(ArrivalPattern::ConstrainedPoisson {
            spec,
            rate_per_window,
        })
    }

    /// An on/off source alternating `on_windows` maximal-burst windows
    /// with `off_windows` silent windows.
    ///
    /// # Errors
    ///
    /// Returns [`UamError::InvalidGeneratorParameter`] if `on_windows` is
    /// zero (a source that never fires).
    pub fn on_off(spec: UamSpec, on_windows: u32, off_windows: u32) -> Result<Self, UamError> {
        if on_windows == 0 {
            return Err(UamError::InvalidGeneratorParameter { name: "on_windows" });
        }
        Ok(ArrivalPattern::OnOff {
            spec,
            on_windows,
            off_windows,
        })
    }

    /// The UAM descriptor this pattern complies with.
    #[must_use]
    pub fn spec(&self) -> &UamSpec {
        match self {
            ArrivalPattern::Periodic { spec, .. }
            | ArrivalPattern::Sporadic { spec, .. }
            | ArrivalPattern::WindowBurst { spec }
            | ArrivalPattern::RandomBurst { spec }
            | ArrivalPattern::ConstrainedPoisson { spec, .. }
            | ArrivalPattern::OnOff { spec, .. } => spec,
        }
    }

    /// Generates all arrivals in `[0, horizon)`.
    ///
    /// The returned trace complies with [`ArrivalPattern::spec`]; this is
    /// checked by a debug assertion.
    pub fn generate<R: Rng + ?Sized>(&self, horizon: TimeDelta, rng: &mut R) -> ArrivalTrace {
        let end = SimTime::ZERO + horizon;
        let trace = match self {
            ArrivalPattern::Periodic { spec, phase } => {
                let mut t = SimTime::ZERO + *phase;
                let mut trace = ArrivalTrace::new();
                while t < end {
                    trace.push(t);
                    t = t.saturating_add(spec.window());
                    if t == SimTime::MAX {
                        break;
                    }
                }
                trace
            }
            ArrivalPattern::Sporadic { spec, max_extra } => {
                let mut t = SimTime::ZERO;
                let mut trace = ArrivalTrace::new();
                while t < end {
                    trace.push(t);
                    let extra = if max_extra.is_zero() {
                        TimeDelta::ZERO
                    } else {
                        TimeDelta::from_micros(rng.gen_range(0..=max_extra.as_micros()))
                    };
                    t = t.saturating_add(spec.window() + extra);
                    if t == SimTime::MAX {
                        break;
                    }
                }
                trace
            }
            ArrivalPattern::WindowBurst { spec } => {
                let a = spec.max_arrivals();
                burst_trace(spec, end, || a)
            }
            ArrivalPattern::RandomBurst { spec } => {
                let a = spec.max_arrivals();
                let mut sizes = Vec::new();
                {
                    // Pre-draw burst sizes so the closure below stays
                    // RNG-free; one size per window up to the horizon.
                    let windows = horizon
                        .as_micros()
                        .div_ceil(spec.window().as_micros().max(1));
                    for _ in 0..windows {
                        sizes.push(rng.gen_range(1..=a));
                    }
                }
                let mut it = sizes.into_iter();
                burst_trace(spec, end, move || it.next().unwrap_or(1))
            }
            ArrivalPattern::ConstrainedPoisson {
                spec,
                rate_per_window,
            } => constrained_poisson(spec, *rate_per_window, end, rng),
            ArrivalPattern::OnOff {
                spec,
                on_windows,
                off_windows,
            } => {
                let cycle = u64::from(on_windows + off_windows);
                let mut index = 0u64;
                let a = spec.max_arrivals();
                burst_trace(spec, end, move || {
                    let active = index % cycle < u64::from(*on_windows);
                    index += 1;
                    if active {
                        a
                    } else {
                        0
                    }
                })
            }
        };
        debug_assert!(
            trace.complies_with(self.spec()),
            "generator produced a non-compliant trace for {:?}",
            self.spec()
        );
        trace
    }
}

// A size of 0 leaves the window silent (used by the on/off source).
fn burst_trace(spec: &UamSpec, end: SimTime, mut size: impl FnMut() -> u32) -> ArrivalTrace {
    let mut trace = ArrivalTrace::new();
    let mut t = SimTime::ZERO;
    while t < end {
        let n = size().min(spec.max_arrivals());
        for _ in 0..n {
            trace.push(t);
        }
        t = t.saturating_add(spec.window());
        if t == SimTime::MAX {
            break;
        }
    }
    trace
}

fn constrained_poisson<R: Rng + ?Sized>(
    spec: &UamSpec,
    rate_per_window: f64,
    end: SimTime,
    rng: &mut R,
) -> ArrivalTrace {
    let p = spec.window();
    let a = spec.max_arrivals() as usize;
    let mean_gap = p.as_micros() as f64 / rate_per_window;
    let mut times: Vec<SimTime> = Vec::new();
    let mut t = 0.0f64;
    loop {
        // Exponential inter-arrival.
        let u: f64 = 1.0 - rng.gen::<f64>();
        t += -mean_gap * u.ln();
        if !t.is_finite() || t >= end.saturating_since(SimTime::ZERO).as_micros() as f64 {
            break;
        }
        let mut arrival = SimTime::from_micros(t as u64);
        // Throttle: the (n)th arrival must be ≥ P after the (n − a)th.
        if times.len() >= a {
            let floor = times[times.len() - a].saturating_add(p);
            if arrival < floor {
                arrival = floor;
                t = arrival.saturating_since(SimTime::ZERO).as_micros() as f64;
            }
        }
        if arrival >= end {
            break;
        }
        times.push(arrival);
    }
    ArrivalTrace::from_times(times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(12345)
    }

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    #[test]
    fn periodic_hits_every_multiple() {
        let p = ArrivalPattern::periodic(ms(10)).unwrap();
        let trace = p.generate(ms(100), &mut rng());
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.as_slice()[3], SimTime::from_millis(30));
        assert!(trace.complies_with(p.spec()));
    }

    #[test]
    fn periodic_phase_shifts_all_arrivals() {
        let p = ArrivalPattern::periodic_with_phase(ms(10), ms(4)).unwrap();
        let trace = p.generate(ms(30), &mut rng());
        let micros: Vec<u64> = trace.iter().map(|t| t.as_micros()).collect();
        assert_eq!(micros, vec![4_000, 14_000, 24_000]);
    }

    #[test]
    fn sporadic_separations_at_least_p() {
        let p = ArrivalPattern::sporadic(ms(5), ms(3)).unwrap();
        let trace = p.generate(ms(500), &mut rng());
        assert!(trace.len() > 10);
        for w in trace.as_slice().windows(2) {
            assert!(w[1] - w[0] >= ms(5));
            assert!(w[1] - w[0] <= ms(8));
        }
    }

    #[test]
    fn window_burst_releases_exactly_a_per_window() {
        let spec = UamSpec::new(4, ms(20)).unwrap();
        let p = ArrivalPattern::window_burst(spec).unwrap();
        let trace = p.generate(ms(200), &mut rng());
        assert_eq!(trace.len(), 40);
        assert_eq!(trace.peak_arrivals_in(ms(20)), 4);
        assert!(trace.complies_with(&spec));
    }

    #[test]
    fn random_burst_sizes_stay_in_bounds() {
        let spec = UamSpec::new(5, ms(10)).unwrap();
        let p = ArrivalPattern::random_burst(spec).unwrap();
        let trace = p.generate(ms(1_000), &mut rng());
        assert!(trace.complies_with(&spec));
        // Each window has between 1 and 5 arrivals.
        for w in 0..100u64 {
            let start = SimTime::from_millis(w * 10);
            let in_window = trace
                .iter()
                .filter(|&t| t >= start && t < start + ms(10))
                .count();
            assert!((1..=5).contains(&in_window), "window {w}: {in_window}");
        }
    }

    #[test]
    fn constrained_poisson_complies_even_when_overdriven() {
        // Demand 10 arrivals per window on average against a bound of 2 —
        // the throttle must clip the trace to the UAM bound.
        let spec = UamSpec::new(2, ms(10)).unwrap();
        let p = ArrivalPattern::constrained_poisson(spec, 10.0).unwrap();
        let trace = p.generate(ms(2_000), &mut rng());
        assert!(trace.complies_with(&spec));
        // Saturation: close to the maximum 2 per window.
        assert!(trace.len() > 350, "got {}", trace.len());
    }

    #[test]
    fn constrained_poisson_light_load_is_nearly_poisson() {
        let spec = UamSpec::new(10, ms(10)).unwrap();
        let p = ArrivalPattern::constrained_poisson(spec, 1.0).unwrap();
        let trace = p.generate(ms(100_000), &mut rng());
        // 1 per window on average over 10k windows.
        let per_window = trace.len() as f64 / 10_000.0;
        assert!((per_window - 1.0).abs() < 0.1, "rate {per_window}");
        assert!(trace.complies_with(&spec));
    }

    #[test]
    fn constrained_poisson_rejects_bad_rate() {
        let spec = UamSpec::new(1, ms(1)).unwrap();
        assert!(ArrivalPattern::constrained_poisson(spec, 0.0).is_err());
        assert!(ArrivalPattern::constrained_poisson(spec, f64::NAN).is_err());
    }

    #[test]
    fn on_off_alternates_bursty_and_silent_phases() {
        let spec = UamSpec::new(2, ms(10)).unwrap();
        let p = ArrivalPattern::on_off(spec, 2, 3).unwrap();
        let trace = p.generate(ms(100), &mut rng());
        assert!(trace.complies_with(&spec));
        // 10 windows: pattern on,on,off,off,off repeating → windows
        // 0,1,5,6 active with 2 arrivals each = 8 arrivals.
        assert_eq!(trace.len(), 8);
        for w in [0u64, 1, 5, 6] {
            let start = SimTime::from_millis(w * 10);
            assert_eq!(
                trace.iter().filter(|&t| t == start).count(),
                2,
                "window {w}"
            );
        }
        for w in [2u64, 3, 4, 7, 8, 9] {
            let start = SimTime::from_millis(w * 10);
            assert_eq!(
                trace.iter().filter(|&t| t == start).count(),
                0,
                "window {w}"
            );
        }
    }

    #[test]
    fn on_off_rejects_never_firing_source() {
        let spec = UamSpec::new(1, ms(1)).unwrap();
        assert!(ArrivalPattern::on_off(spec, 0, 1).is_err());
    }

    #[test]
    fn zero_horizon_generates_nothing() {
        let p = ArrivalPattern::periodic(ms(10)).unwrap();
        assert!(p.generate(TimeDelta::ZERO, &mut rng()).is_empty());
    }

    #[test]
    fn spec_accessor_returns_descriptor() {
        let spec = UamSpec::new(3, ms(7)).unwrap();
        let p = ArrivalPattern::window_burst(spec).unwrap();
        assert_eq!(*p.spec(), spec);
    }
}
