//! The **unimodal arbitrary arrival model** (UAM) and stochastic cycle
//! demands — the workload-facing substrate of the EUA\* reproduction.
//!
//! Under UAM a task `T_i` is described by a pair `⟨a_i, P_i⟩`: at most
//! `a_i` job arrivals may occur in **any** sliding time window of length
//! `P_i` (Hermant & Le Lann). Arrivals may be simultaneous. The periodic
//! model is the special case `⟨1, P⟩`; sporadic and frame-based models are
//! also special cases, which is why the paper calls UAM "a stronger
//! adversary than most arrival models".
//!
//! The crate provides:
//!
//! * [`UamSpec`] — the `⟨a, P⟩` pair with validation and helpers;
//! * [`ArrivalTrace`] and sliding-window **compliance checking**;
//! * arrival **generators** ([`generator`]): periodic, jittered-periodic,
//!   window-burst (the paper's Fig. 3 shape), and UAM-constrained Poisson;
//! * stochastic **demand models** ([`demand`]): normal / uniform /
//!   deterministic cycle demands with mean–variance scaling, a Welford
//!   online profiler, and the Chebyshev (Cantelli) cycle allocation
//!   `c = E(Y) + sqrt(ρ/(1−ρ)·Var(Y))` of paper §3.1;
//! * [`Assurance`] — the per-task statistical requirement `{ν, ρ}`;
//! * demand-bound **primitives** ([`dbf`]): the sliding-window processor
//!   demand `h(L)` and a witness-producing Baruah–Rosier–Howell scan.
//!
//! # Example
//!
//! ```
//! use eua_platform::TimeDelta;
//! use eua_uam::{Assurance, UamSpec};
//! use eua_uam::demand::DemandModel;
//!
//! # fn main() -> Result<(), eua_uam::UamError> {
//! // At most 3 arrivals in any 50 ms window.
//! let spec = UamSpec::new(3, TimeDelta::from_millis(50))?;
//! assert!(!spec.is_periodic());
//!
//! // A task demanding 1M cycles on average (variance = mean, as in the
//! // paper's experiments) that must finish within its allocation with
//! // probability 0.96:
//! let demand = DemandModel::normal(1_000_000.0, 1_000_000.0)?;
//! let assurance = Assurance::new(1.0, 0.96)?;
//! let c = demand.chebyshev_allocation(assurance.rho())?;
//! assert!(c.get() > 1_000_000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assurance;
pub mod dbf;
pub mod demand;
mod error;
pub mod generator;
mod spec;
mod trace;

pub use assurance::Assurance;
pub use error::UamError;
pub use spec::UamSpec;
pub use trace::{ArrivalTrace, UamViolation};
