//! The `⟨a, P⟩` UAM task descriptor.

use std::fmt;

use eua_platform::TimeDelta;

use crate::error::UamError;

/// A task's unimodal-arbitrary-arrival descriptor `⟨a, P⟩`: at most `a`
/// job arrivals in any sliding window of length `P`.
///
/// Windows are half-open — `[t, t + P)` — so a strictly periodic task with
/// period exactly `P` (arrivals at `0, P, 2P, …`) is the legal special case
/// `⟨1, P⟩` the paper calls out.
///
/// # Example
///
/// ```
/// use eua_platform::TimeDelta;
/// use eua_uam::UamSpec;
///
/// # fn main() -> Result<(), eua_uam::UamError> {
/// let periodic = UamSpec::periodic(TimeDelta::from_millis(20))?;
/// assert!(periodic.is_periodic());
/// assert_eq!(periodic.max_arrivals(), 1);
///
/// let bursty = UamSpec::new(4, TimeDelta::from_millis(20))?;
/// assert_eq!(bursty.max_arrivals(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UamSpec {
    max_arrivals: u32,
    window: TimeDelta,
}

impl UamSpec {
    /// Creates a UAM descriptor allowing at most `max_arrivals` arrivals in
    /// any sliding window of length `window`.
    ///
    /// # Errors
    ///
    /// Returns [`UamError::ZeroArrivalBound`] if `max_arrivals == 0` and
    /// [`UamError::ZeroWindow`] if the window is zero.
    pub fn new(max_arrivals: u32, window: TimeDelta) -> Result<Self, UamError> {
        if max_arrivals == 0 {
            return Err(UamError::ZeroArrivalBound);
        }
        if window.is_zero() {
            return Err(UamError::ZeroWindow);
        }
        Ok(UamSpec {
            max_arrivals,
            window,
        })
    }

    /// The periodic special case `⟨1, period⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`UamError::ZeroWindow`] if the period is zero.
    pub fn periodic(period: TimeDelta) -> Result<Self, UamError> {
        UamSpec::new(1, period)
    }

    /// The arrival bound `a`.
    #[must_use]
    pub fn max_arrivals(&self) -> u32 {
        self.max_arrivals
    }

    /// The sliding window `P`.
    #[must_use]
    pub fn window(&self) -> TimeDelta {
        self.window
    }

    /// `true` for the periodic special case `⟨1, P⟩`.
    #[must_use]
    pub fn is_periodic(&self) -> bool {
        self.max_arrivals == 1
    }

    /// A copy of this spec with a different arrival bound — handy for the
    /// paper's Fig. 3 sweep over `a ∈ {1, 2, 3}` at a fixed window.
    ///
    /// # Errors
    ///
    /// Returns [`UamError::ZeroArrivalBound`] if `max_arrivals == 0`.
    pub fn with_max_arrivals(&self, max_arrivals: u32) -> Result<Self, UamError> {
        UamSpec::new(max_arrivals, self.window)
    }

    /// The worst-case long-run arrival rate, in arrivals per microsecond.
    #[must_use]
    pub fn peak_rate(&self) -> f64 {
        self.max_arrivals as f64 / self.window.as_micros() as f64
    }
}

impl fmt::Display for UamSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.max_arrivals, self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_inputs() {
        assert_eq!(
            UamSpec::new(0, TimeDelta::from_millis(1)).unwrap_err(),
            UamError::ZeroArrivalBound
        );
        assert_eq!(
            UamSpec::new(1, TimeDelta::ZERO).unwrap_err(),
            UamError::ZeroWindow
        );
    }

    #[test]
    fn periodic_is_one_arrival() {
        let s = UamSpec::periodic(TimeDelta::from_millis(10)).unwrap();
        assert!(s.is_periodic());
        assert_eq!(s.max_arrivals(), 1);
        assert_eq!(s.window(), TimeDelta::from_millis(10));
    }

    #[test]
    fn with_max_arrivals_keeps_window() {
        let s = UamSpec::periodic(TimeDelta::from_millis(10)).unwrap();
        let b = s.with_max_arrivals(3).unwrap();
        assert_eq!(b.max_arrivals(), 3);
        assert_eq!(b.window(), s.window());
        assert!(s.with_max_arrivals(0).is_err());
    }

    #[test]
    fn peak_rate_is_a_over_p() {
        let s = UamSpec::new(5, TimeDelta::from_micros(100)).unwrap();
        assert!((s.peak_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn display_matches_paper_notation() {
        let s = UamSpec::new(2, TimeDelta::from_micros(500)).unwrap();
        assert_eq!(s.to_string(), "<2, 500us>");
    }
}
