//! Arrival traces and UAM compliance checking.

use std::fmt;

use eua_platform::{SimTime, TimeDelta};

use crate::spec::UamSpec;

/// A witness that an arrival trace violates a UAM descriptor: `count`
/// arrivals were observed in the half-open window starting at `window_start`,
/// exceeding the bound `a`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UamViolation {
    /// Start of the offending window.
    pub window_start: SimTime,
    /// Number of arrivals observed inside `[window_start, window_start + P)`.
    pub count: u32,
}

impl fmt::Display for UamViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} arrivals in the window starting at {}",
            self.count, self.window_start
        )
    }
}

/// A time-sorted sequence of job arrival instants for one task.
///
/// Simultaneous arrivals are allowed (the paper: "instances may arrive
/// simultaneously"), so the sequence is non-decreasing rather than strictly
/// increasing.
///
/// # Example
///
/// ```
/// use eua_platform::{SimTime, TimeDelta};
/// use eua_uam::{ArrivalTrace, UamSpec};
///
/// # fn main() -> Result<(), eua_uam::UamError> {
/// let spec = UamSpec::new(2, TimeDelta::from_millis(10))?;
/// let trace: ArrivalTrace =
///     [0u64, 0, 10_000, 10_000, 20_000].iter().map(|&t| SimTime::from_micros(t)).collect();
/// assert!(trace.check(&spec).is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArrivalTrace {
    times: Vec<SimTime>,
}

impl ArrivalTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        ArrivalTrace::default()
    }

    /// Creates a trace from instants, sorting them into arrival order.
    #[must_use]
    pub fn from_times(times: impl IntoIterator<Item = SimTime>) -> Self {
        let mut times: Vec<SimTime> = times.into_iter().collect();
        times.sort_unstable();
        ArrivalTrace { times }
    }

    /// Appends an arrival.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last recorded arrival; traces are built
    /// in time order.
    pub fn push(&mut self, time: SimTime) {
        if let Some(&last) = self.times.last() {
            assert!(
                time >= last,
                "arrivals must be pushed in non-decreasing time order"
            );
        }
        self.times.push(time);
    }

    /// Number of arrivals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the trace has no arrivals.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The arrival instants, non-decreasing.
    #[must_use]
    pub fn as_slice(&self) -> &[SimTime] {
        &self.times
    }

    /// Iterates over the arrival instants.
    pub fn iter(&self) -> impl Iterator<Item = SimTime> + '_ {
        self.times.iter().copied()
    }

    /// Verifies the trace against a UAM descriptor.
    ///
    /// The trace complies with `⟨a, P⟩` iff every half-open window
    /// `[t, t + P)` contains at most `a` arrivals, which for a sorted trace
    /// reduces to `times[i + a] − times[i] ≥ P` for every `i`.
    ///
    /// # Errors
    ///
    /// Returns the first [`UamViolation`] found, with the offending window
    /// start and the number of arrivals inside it.
    pub fn check(&self, spec: &UamSpec) -> Result<(), UamViolation> {
        let a = spec.max_arrivals() as usize;
        let p = spec.window();
        for i in 0..self.times.len().saturating_sub(a) {
            let span = self.times[i + a] - self.times[i];
            if span < p {
                // Count everything inside [times[i], times[i] + P).
                let end = self.times[i].saturating_add(p);
                let count = self.times[i..].iter().take_while(|&&t| t < end).count() as u32;
                return Err(UamViolation {
                    window_start: self.times[i],
                    count,
                });
            }
        }
        Ok(())
    }

    /// `true` when [`ArrivalTrace::check`] passes.
    #[must_use]
    pub fn complies_with(&self, spec: &UamSpec) -> bool {
        self.check(spec).is_ok()
    }

    /// The maximum number of arrivals observed in any half-open window of
    /// length `window` — the trace's empirical arrival bound.
    #[must_use]
    pub fn peak_arrivals_in(&self, window: TimeDelta) -> u32 {
        let mut peak = 0u32;
        for (i, &start) in self.times.iter().enumerate() {
            let end = start.saturating_add(window);
            let count = self.times[i..].iter().take_while(|&&t| t < end).count() as u32;
            peak = peak.max(count);
        }
        peak
    }
}

impl FromIterator<SimTime> for ArrivalTrace {
    fn from_iter<I: IntoIterator<Item = SimTime>>(iter: I) -> Self {
        ArrivalTrace::from_times(iter)
    }
}

impl Extend<SimTime> for ArrivalTrace {
    fn extend<I: IntoIterator<Item = SimTime>>(&mut self, iter: I) {
        for t in iter {
            self.push(t);
        }
    }
}

impl IntoIterator for ArrivalTrace {
    type Item = SimTime;
    type IntoIter = std::vec::IntoIter<SimTime>;
    fn into_iter(self) -> Self::IntoIter {
        self.times.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::UamError;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    fn spec(a: u32, p_us: u64) -> UamSpec {
        UamSpec::new(a, TimeDelta::from_micros(p_us)).unwrap()
    }

    #[test]
    fn strict_periodic_complies_with_1_p() -> Result<(), UamError> {
        let s = spec(1, 100);
        let trace: ArrivalTrace = (0..50).map(|k| us(k * 100)).collect();
        assert!(trace.complies_with(&s));
        Ok(())
    }

    #[test]
    fn faster_than_periodic_violates() {
        let s = spec(1, 100);
        let trace: ArrivalTrace = [us(0), us(99)].into_iter().collect();
        let v = trace.check(&s).unwrap_err();
        assert_eq!(v.window_start, us(0));
        assert_eq!(v.count, 2);
    }

    #[test]
    fn simultaneous_arrivals_count_toward_the_bound() {
        let s = spec(2, 100);
        let ok: ArrivalTrace = [us(0), us(0), us(100), us(100)].into_iter().collect();
        assert!(ok.complies_with(&s));
        let bad: ArrivalTrace = [us(0), us(0), us(0)].into_iter().collect();
        assert_eq!(bad.check(&s).unwrap_err().count, 3);
    }

    #[test]
    fn burst_at_each_window_boundary_is_legal() {
        let s = spec(3, 1_000);
        let mut t = ArrivalTrace::new();
        for w in 0..10u64 {
            for _ in 0..3 {
                t.push(us(w * 1_000));
            }
        }
        assert!(t.complies_with(&s));
        assert_eq!(t.peak_arrivals_in(TimeDelta::from_micros(1_000)), 3);
    }

    #[test]
    fn violation_window_is_first_offender() {
        let s = spec(2, 1_000);
        let t: ArrivalTrace = [us(0), us(500), us(5_000), us(5_100), us(5_200)]
            .into_iter()
            .collect();
        let v = t.check(&s).unwrap_err();
        assert_eq!(v.window_start, us(5_000));
        assert_eq!(v.count, 3);
        assert_eq!(v.to_string(), "3 arrivals in the window starting at 5000us");
    }

    #[test]
    fn peak_arrivals_measures_empirical_bound() {
        let t: ArrivalTrace = [us(0), us(10), us(20), us(2_000)].into_iter().collect();
        assert_eq!(t.peak_arrivals_in(TimeDelta::from_micros(100)), 3);
        assert_eq!(t.peak_arrivals_in(TimeDelta::from_micros(15)), 2);
        assert_eq!(t.peak_arrivals_in(TimeDelta::from_micros(1)), 1);
    }

    #[test]
    fn from_times_sorts() {
        let t = ArrivalTrace::from_times([us(30), us(10), us(20)]);
        assert_eq!(t.as_slice(), &[us(10), us(20), us(30)]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn push_rejects_time_travel() {
        let mut t = ArrivalTrace::new();
        t.push(us(10));
        t.push(us(5));
    }

    #[test]
    fn empty_trace_always_complies() {
        let t = ArrivalTrace::new();
        assert!(t.is_empty());
        assert!(t.complies_with(&spec(1, 1)));
        assert_eq!(t.peak_arrivals_in(TimeDelta::from_micros(10)), 0);
    }
}
