#![allow(clippy::expect_used)] // test/demo code: panicking on bad setup is the point

//! Property-based tests: every generator complies with its UAM spec, and
//! the Chebyshev allocation honours its probabilistic contract.

use eua_platform::TimeDelta;
use eua_uam::demand::DemandModel;
use eua_uam::generator::ArrivalPattern;
use eua_uam::{ArrivalTrace, UamSpec};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_spec() -> impl Strategy<Value = UamSpec> {
    (1u32..8, 100u64..100_000)
        .prop_map(|(a, p)| UamSpec::new(a, TimeDelta::from_micros(p)).expect("valid"))
}

fn arb_pattern() -> impl Strategy<Value = ArrivalPattern> {
    arb_spec().prop_flat_map(|spec| {
        prop_oneof![
            Just(ArrivalPattern::periodic(spec.window()).expect("valid")),
            Just(
                ArrivalPattern::sporadic(
                    spec.window(),
                    TimeDelta::from_micros(spec.window().as_micros() / 2),
                )
                .expect("valid")
            ),
            Just(ArrivalPattern::window_burst(spec).expect("valid")),
            Just(ArrivalPattern::random_burst(spec).expect("valid")),
            (0.1f64..10.0).prop_map(move |rate| {
                ArrivalPattern::constrained_poisson(spec, rate).expect("valid")
            }),
            (1u32..5, 0u32..5).prop_map(move |(on, off)| {
                ArrivalPattern::on_off(spec, on, off).expect("valid")
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_generator_complies_with_its_spec(pattern in arb_pattern(), seed in 0u64..1_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let horizon = TimeDelta::from_micros(pattern.spec().window().as_micros() * 20);
        let trace = pattern.generate(horizon, &mut rng);
        prop_assert!(
            trace.complies_with(pattern.spec()),
            "{:?} produced a non-compliant trace", pattern
        );
        // Everything lands inside the horizon.
        for t in trace.iter() {
            prop_assert!(t.saturating_since(eua_platform::SimTime::ZERO) < horizon);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed(pattern in arb_pattern(), seed in 0u64..1_000) {
        let horizon = TimeDelta::from_micros(pattern.spec().window().as_micros() * 10);
        let a = pattern.generate(horizon, &mut SmallRng::seed_from_u64(seed));
        let b = pattern.generate(horizon, &mut SmallRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn peak_arrivals_matches_check(times in proptest::collection::vec(0u64..1_000_000, 0..60), a in 1u32..6, p in 100u64..100_000) {
        let spec = UamSpec::new(a, TimeDelta::from_micros(p)).expect("valid");
        let trace = ArrivalTrace::from_times(
            times.into_iter().map(eua_platform::SimTime::from_micros),
        );
        let peak = trace.peak_arrivals_in(spec.window());
        prop_assert_eq!(trace.complies_with(&spec), peak <= a);
    }

    #[test]
    fn chebyshev_allocation_dominates_mean(mean in 1.0f64..1e8, var in 0.0f64..1e10, rho in 0.0f64..0.999) {
        let m = DemandModel::normal(mean, var).expect("valid");
        let c = m.chebyshev_allocation(rho).expect("valid rho");
        prop_assert!(c.as_f64() + 1.0 >= mean);
        // Monotone in rho.
        let c2 = m.chebyshev_allocation((rho + 0.0005).min(0.9995)).expect("valid");
        prop_assert!(c2 >= c);
    }

    #[test]
    fn chebyshev_probability_holds_for_normal_demand(mean in 1e4f64..1e6, rho in 0.5f64..0.99) {
        // Cantelli is conservative for the normal distribution, so the
        // empirical coverage must exceed rho.
        let m = DemandModel::normal(mean, mean).expect("valid");
        let c = m.chebyshev_allocation(rho).expect("valid");
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 2_000;
        let under = (0..n).filter(|_| m.sample(&mut rng) < c).count();
        prop_assert!(under as f64 / n as f64 >= rho);
    }

    #[test]
    fn scaled_demand_keeps_chebyshev_ordering(mean in 1.0f64..1e6, k in 0.01f64..100.0, rho in 0.0f64..0.99) {
        let m = DemandModel::normal(mean, mean).expect("valid");
        let scaled = m.scaled(k);
        prop_assert!((scaled.mean() - k * mean).abs() < 1e-6 * (k * mean).max(1.0));
        prop_assert!((scaled.variance() - k * k * mean).abs() < 1e-6 * (k * k * mean).max(1.0));
        let c = scaled.chebyshev_allocation(rho).expect("valid");
        prop_assert!(c.as_f64() + 1.0 >= scaled.mean());
    }
}
