//! The paper's Table 1 application specifications (A1–A3).
//!
//! The source text's numeric ranges are OCR-damaged; the values here are
//! the DESIGN.md §3 reconstruction, preserving the stated structure (task
//! counts, per-app `a`, "a varied mix of short and long time windows",
//! and distinct `U^max` scales per application).

use std::fmt;

/// One application row of Table 1: a group of tasks sharing an arrival
/// bound and drawing their windows and maximum utilities from common
/// ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// The application's name (`"A1"`, `"A2"`, `"A3"`, or custom).
    pub name: &'static str,
    /// Number of tasks in the application.
    pub tasks: usize,
    /// The UAM arrival bound `a` shared by the application's tasks.
    pub max_arrivals: u32,
    /// Uniform range (inclusive) of the time window `P`, in milliseconds.
    pub window_range_ms: (u64, u64),
    /// Uniform range (inclusive) of `U^max`.
    pub umax_range: (f64, f64),
}

impl AppSpec {
    /// Table 1 row **A1**: 4 tasks, `⟨5, P⟩`, short windows, high utility.
    #[must_use]
    pub fn a1() -> Self {
        AppSpec {
            name: "A1",
            tasks: 4,
            max_arrivals: 5,
            window_range_ms: (50, 100),
            umax_range: (50.0, 70.0),
        }
    }

    /// Table 1 row **A2**: 6 tasks, `⟨2, P⟩`, medium windows.
    #[must_use]
    pub fn a2() -> Self {
        AppSpec {
            name: "A2",
            tasks: 6,
            max_arrivals: 2,
            window_range_ms: (500, 700),
            umax_range: (30.0, 40.0),
        }
    }

    /// Table 1 row **A3**: 8 tasks, `⟨3, P⟩`, long windows, wide utility
    /// spread.
    #[must_use]
    pub fn a3() -> Self {
        AppSpec {
            name: "A3",
            tasks: 8,
            max_arrivals: 3,
            window_range_ms: (1_000, 3_000),
            umax_range: (10.0, 100.0),
        }
    }
}

impl fmt::Display for AppSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} tasks, <{}, P>, P in [{}, {}] ms, Umax in [{}, {}]",
            self.name,
            self.tasks,
            self.max_arrivals,
            self.window_range_ms.0,
            self.window_range_ms.1,
            self.umax_range.0,
            self.umax_range.1
        )
    }
}

/// All of Table 1, in row order.
#[must_use]
pub fn table1() -> Vec<AppSpec> {
    vec![AppSpec::a1(), AppSpec::a2(), AppSpec::a3()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_structure() {
        let t = table1();
        assert_eq!(t.len(), 3);
        assert_eq!(t.iter().map(|a| a.tasks).sum::<usize>(), 18);
        assert_eq!(t[0].max_arrivals, 5);
        assert_eq!(t[1].max_arrivals, 2);
        assert_eq!(t[2].max_arrivals, 3);
    }

    #[test]
    fn windows_mix_short_and_long() {
        let t = table1();
        assert!(t[0].window_range_ms.1 < t[2].window_range_ms.0);
        for a in &t {
            assert!(a.window_range_ms.0 <= a.window_range_ms.1);
            assert!(a.umax_range.0 <= a.umax_range.1);
        }
    }

    #[test]
    fn display_prints_all_fields() {
        let s = AppSpec::a1().to_string();
        assert!(s.contains("A1") && s.contains("4 tasks") && s.contains("<5, P>"));
    }
}
