//! Task-set synthesis from application specs, with paper-style load
//! scaling.

use eua_platform::{Frequency, TimeDelta};
use eua_sim::{Task, TaskSet};
use eua_tuf::Tuf;
use eua_uam::demand::DemandModel;
use eua_uam::generator::ArrivalPattern;
use eua_uam::{Assurance, UamSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::apps::AppSpec;
use crate::error::WorkloadError;

/// Which TUF shape the synthesized tasks use: step for the §5.1
/// experiments, linear (slope `−U^max/P`) for §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TufShape {
    /// Downward-step TUFs (Fig. 2).
    #[default]
    Step,
    /// Linear TUFs with slope `−U^max/P` (Fig. 3).
    Linear,
}

/// How jobs arrive within each task's UAM bound.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ArrivalStyle {
    /// Strictly periodic `⟨1, P⟩` arrivals (forces `a = 1`).
    Periodic,
    /// `a` simultaneous arrivals at every window boundary — regular and
    /// maximal.
    #[default]
    Burst,
    /// Poisson arrivals throttled to the UAM bound — the irregular,
    /// hard-to-predict adversary behind the paper's Fig. 3 observation
    /// that DVS degrades as `a` grows.
    Poisson {
        /// Mean arrivals per window before throttling (typically `a`).
        rate_per_window: f64,
    },
}

/// A synthesized workload: the task set plus one UAM-compliant arrival
/// pattern per task.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The tasks, in synthesis order.
    pub tasks: TaskSet,
    /// One arrival pattern per task (index-aligned with `tasks`).
    pub patterns: Vec<ArrivalPattern>,
}

impl Workload {
    /// Rescales all demands so the system load hits `target` at `f_max`
    /// (the paper's `k` scaling). Arrival patterns are unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidLoad`] for a non-positive target
    /// and propagates task re-derivation failures.
    pub fn scaled_to_load(&self, target: f64, f_max: Frequency) -> Result<Self, WorkloadError> {
        if !target.is_finite() || target <= 0.0 {
            return Err(WorkloadError::InvalidLoad { value: target });
        }
        Ok(Workload {
            tasks: self.tasks.scaled_to_load(target, f_max)?,
            patterns: self.patterns.clone(),
        })
    }

    /// The system load `ρ` of this workload at `f_max`.
    #[must_use]
    pub fn system_load(&self, f_max: Frequency) -> f64 {
        self.tasks.system_load(f_max)
    }
}

/// Builder for synthesized workloads following the paper's §5 procedure.
///
/// # Example
///
/// ```
/// use eua_uam::Assurance;
/// use eua_workload::{table1, TufShape, WorkloadBuilder};
///
/// # fn main() -> Result<(), eua_workload::WorkloadError> {
/// let w = WorkloadBuilder::new(table1())
///     .shape(TufShape::Linear)
///     .assurance(Assurance::linear_default())
///     .max_arrivals(2) // the Fig. 3 sweep overrides each app's a
///     .build(7)?;
/// assert_eq!(w.tasks.len(), 18);
/// assert_eq!(w.patterns.len(), 18);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    apps: Vec<AppSpec>,
    shape: TufShape,
    assurance: Assurance,
    max_arrivals_override: Option<u32>,
    arrivals: ArrivalStyle,
    base_demand_range: (f64, f64),
}

impl WorkloadBuilder {
    /// Starts a builder over the given application specs, defaulting to
    /// step TUFs, the `{ν = 1, ρ = 0.96}` assurance, each app's own
    /// arrival bound, bursty arrivals, and base demands in
    /// `[10⁵, 10⁶]` cycles.
    #[must_use]
    pub fn new(apps: Vec<AppSpec>) -> Self {
        WorkloadBuilder {
            apps,
            shape: TufShape::Step,
            assurance: Assurance::step_default(),
            max_arrivals_override: None,
            arrivals: ArrivalStyle::Burst,
            base_demand_range: (1e5, 1e6),
        }
    }

    /// Sets the TUF shape.
    #[must_use]
    pub fn shape(mut self, shape: TufShape) -> Self {
        self.shape = shape;
        self
    }

    /// Sets the `{ν, ρ}` requirement for every task.
    #[must_use]
    pub fn assurance(mut self, assurance: Assurance) -> Self {
        self.assurance = assurance;
        self
    }

    /// Overrides every application's arrival bound `a` (the Fig. 3 sweep
    /// sets this to 1, 2, 3 in turn).
    #[must_use]
    pub fn max_arrivals(mut self, a: u32) -> Self {
        self.max_arrivals_override = Some(a);
        self
    }

    /// Uses strictly periodic `⟨1, P⟩` arrivals — the §5.1 setting
    /// ("periodic task sets"), required for comparability with the
    /// deadline-based baselines.
    #[must_use]
    pub fn periodic(mut self) -> Self {
        self.arrivals = ArrivalStyle::Periodic;
        self.max_arrivals_override = Some(1);
        self
    }

    /// Sets the arrival style explicitly; see [`ArrivalStyle`].
    #[must_use]
    pub fn arrivals(mut self, style: ArrivalStyle) -> Self {
        self.arrivals = style;
        self
    }

    /// Sets the uniform range base demands `E(Y)` are drawn from (before
    /// load scaling). `Var(Y) = E(Y)` as in the paper.
    #[must_use]
    pub fn base_demand_range(mut self, lo: f64, hi: f64) -> Self {
        self.base_demand_range = (lo, hi);
        self
    }

    /// Synthesizes the workload with all randomness derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::NoApps`] for an empty spec list and
    /// propagates task/pattern construction failures.
    pub fn build(&self, seed: u64) -> Result<Workload, WorkloadError> {
        if self.apps.is_empty() {
            return Err(WorkloadError::NoApps);
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut tasks = Vec::new();
        let mut patterns = Vec::new();
        for app in &self.apps {
            for k in 0..app.tasks {
                let window_ms = rng.gen_range(app.window_range_ms.0..=app.window_range_ms.1);
                let window = TimeDelta::from_millis(window_ms);
                let umax = rng.gen_range(app.umax_range.0..=app.umax_range.1);
                let a = self.max_arrivals_override.unwrap_or(app.max_arrivals);
                let spec = UamSpec::new(a, window)?;
                let tuf = match self.shape {
                    TufShape::Step => Tuf::step(umax, window)?,
                    TufShape::Linear => Tuf::linear(umax, window)?,
                };
                let mean = rng.gen_range(self.base_demand_range.0..=self.base_demand_range.1);
                let demand = DemandModel::normal(mean, mean)?;
                let task = Task::new(
                    format!("{}-{}", app.name, k),
                    tuf,
                    spec,
                    demand,
                    self.assurance,
                )?;
                let pattern = match self.arrivals {
                    ArrivalStyle::Periodic => ArrivalPattern::periodic(window)?,
                    ArrivalStyle::Burst if a == 1 => ArrivalPattern::periodic(window)?,
                    ArrivalStyle::Burst => ArrivalPattern::window_burst(spec)?,
                    ArrivalStyle::Poisson { rate_per_window } => {
                        ArrivalPattern::constrained_poisson(spec, rate_per_window)?
                    }
                };
                tasks.push(task);
                patterns.push(pattern);
            }
        }
        Ok(Workload {
            tasks: TaskSet::new(tasks)?,
            patterns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::table1;

    #[test]
    fn builds_table1_task_count() {
        let w = WorkloadBuilder::new(table1()).build(1).unwrap();
        assert_eq!(w.tasks.len(), 18);
        assert_eq!(w.patterns.len(), 18);
    }

    #[test]
    fn deterministic_per_seed() {
        let b = WorkloadBuilder::new(table1());
        assert_eq!(b.build(5).unwrap(), b.build(5).unwrap());
        assert_ne!(b.build(5).unwrap(), b.build(6).unwrap());
    }

    #[test]
    fn periodic_mode_forces_single_arrivals() {
        let w = WorkloadBuilder::new(table1()).periodic().build(2).unwrap();
        for (_, t) in w.tasks.iter() {
            assert!(t.uam().is_periodic());
        }
        for p in &w.patterns {
            assert!(matches!(p, ArrivalPattern::Periodic { .. }));
        }
    }

    #[test]
    fn max_arrivals_override_applies_to_every_task() {
        let w = WorkloadBuilder::new(table1())
            .max_arrivals(3)
            .build(2)
            .unwrap();
        for (_, t) in w.tasks.iter() {
            assert_eq!(t.uam().max_arrivals(), 3);
        }
        for p in &w.patterns {
            assert!(matches!(p, ArrivalPattern::WindowBurst { .. }));
        }
    }

    #[test]
    fn linear_shape_produces_linear_tufs() {
        let w = WorkloadBuilder::new(table1())
            .shape(TufShape::Linear)
            .assurance(Assurance::linear_default())
            .build(3)
            .unwrap();
        for (_, t) in w.tasks.iter() {
            assert!(!t.tuf().is_step());
            // ν = 0.3 on linear ⇒ D = 0.7 P.
            let expected = (t.uam().window().as_micros() as f64 * 0.7).floor() as u64;
            assert_eq!(t.critical_offset().as_micros(), expected);
        }
    }

    #[test]
    fn scaling_hits_target_loads() {
        let f_max = Frequency::from_mhz(100);
        let w = WorkloadBuilder::new(table1()).periodic().build(4).unwrap();
        for target in [0.2, 0.6, 1.0, 1.4, 1.8] {
            let scaled = w.scaled_to_load(target, f_max).unwrap();
            let got = scaled.system_load(f_max);
            assert!(
                (got - target).abs() / target < 0.01,
                "target {target}, got {got}"
            );
        }
    }

    #[test]
    fn umax_and_window_stay_in_app_ranges() {
        let w = WorkloadBuilder::new(table1()).build(9).unwrap();
        for (i, (_, t)) in w.tasks.iter().enumerate() {
            let app = if i < 4 {
                AppSpec::a1()
            } else if i < 10 {
                AppSpec::a2()
            } else {
                AppSpec::a3()
            };
            let p_ms = t.uam().window().as_micros() / 1_000;
            assert!(
                (app.window_range_ms.0..=app.window_range_ms.1).contains(&p_ms),
                "task {i}: window {p_ms} ms outside {:?}",
                app.window_range_ms
            );
            let umax = t.tuf().max_utility();
            assert!(
                umax >= app.umax_range.0 && umax <= app.umax_range.1,
                "task {i}: umax {umax} outside {:?}",
                app.umax_range
            );
        }
    }

    #[test]
    fn empty_apps_rejected() {
        assert_eq!(
            WorkloadBuilder::new(vec![]).build(1).unwrap_err(),
            WorkloadError::NoApps
        );
    }

    #[test]
    fn invalid_load_rejected() {
        let w = WorkloadBuilder::new(table1()).build(1).unwrap();
        let f = Frequency::from_mhz(100);
        assert!(matches!(
            w.scaled_to_load(0.0, f),
            Err(WorkloadError::InvalidLoad { .. })
        ));
        assert!(matches!(
            w.scaled_to_load(f64::NAN, f),
            Err(WorkloadError::InvalidLoad { .. })
        ));
    }
}
