//! Error type for workload synthesis.

use std::error::Error;
use std::fmt;

use eua_sim::SimError;
use eua_tuf::TufError;
use eua_uam::UamError;

/// Errors produced while synthesizing workloads.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// No application specs were supplied.
    NoApps,
    /// The requested load was not positive and finite.
    InvalidLoad {
        /// The offending value.
        value: f64,
    },
    /// A task failed to construct.
    Task {
        /// The underlying construction error.
        source: SimError,
    },
    /// A synthesized TUF was rejected.
    Tuf {
        /// The underlying shape error.
        source: TufError,
    },
    /// An arrival pattern failed to construct.
    Pattern {
        /// The underlying arrival-model error.
        source: UamError,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::NoApps => write!(f, "at least one application spec is required"),
            WorkloadError::InvalidLoad { value } => {
                write!(f, "target load must be positive and finite, got {value}")
            }
            WorkloadError::Task { source } => write!(f, "task synthesis failed: {source}"),
            WorkloadError::Tuf { source } => write!(f, "tuf synthesis failed: {source}"),
            WorkloadError::Pattern { source } => write!(f, "pattern synthesis failed: {source}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Task { source } => Some(source),
            WorkloadError::Tuf { source } => Some(source),
            WorkloadError::Pattern { source } => Some(source),
            _ => None,
        }
    }
}

impl From<SimError> for WorkloadError {
    fn from(source: SimError) -> Self {
        WorkloadError::Task { source }
    }
}

impl From<UamError> for WorkloadError {
    fn from(source: UamError) -> Self {
        WorkloadError::Pattern { source }
    }
}

impl From<TufError> for WorkloadError {
    fn from(source: TufError) -> Self {
        WorkloadError::Tuf { source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        for e in [
            WorkloadError::NoApps,
            WorkloadError::InvalidLoad { value: -1.0 },
            WorkloadError::Task {
                source: SimError::EmptyTaskSet,
            },
            WorkloadError::Tuf {
                source: TufError::ZeroMaxUtility,
            },
            WorkloadError::Pattern {
                source: UamError::ZeroWindow,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_preserve_typed_sources() {
        let e: WorkloadError = SimError::EmptyTaskSet.into();
        assert!(matches!(e, WorkloadError::Task { .. }));
        assert!(e.source().is_some());
        let e: WorkloadError = UamError::ZeroWindow.into();
        assert!(matches!(e, WorkloadError::Pattern { .. }));
        assert_eq!(
            e.source().expect("pattern source").to_string(),
            UamError::ZeroWindow.to_string()
        );
        let e: WorkloadError = TufError::ZeroMaxUtility.into();
        assert!(matches!(e, WorkloadError::Tuf { .. }));
        assert!(WorkloadError::NoApps.source().is_none());
    }

    #[test]
    fn sources_chain_through_layers() {
        // uam → sim → workload: the chain stays walkable end to end.
        let sim: SimError = UamError::ZeroWindow.into();
        let workload: WorkloadError = sim.into();
        let mid = workload.source().expect("sim layer");
        let leaf = mid.source().expect("uam layer");
        assert_eq!(leaf.to_string(), UamError::ZeroWindow.to_string());
    }
}
