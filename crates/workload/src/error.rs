//! Error type for workload synthesis.

use std::error::Error;
use std::fmt;

/// Errors produced while synthesizing workloads.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// No application specs were supplied.
    NoApps,
    /// The requested load was not positive and finite.
    InvalidLoad {
        /// The offending value.
        value: f64,
    },
    /// A task failed to construct (propagated from `eua-sim`).
    Task(String),
    /// An arrival pattern failed to construct (propagated from `eua-uam`).
    Pattern(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::NoApps => write!(f, "at least one application spec is required"),
            WorkloadError::InvalidLoad { value } => {
                write!(f, "target load must be positive and finite, got {value}")
            }
            WorkloadError::Task(msg) => write!(f, "task synthesis failed: {msg}"),
            WorkloadError::Pattern(msg) => write!(f, "pattern synthesis failed: {msg}"),
        }
    }
}

impl Error for WorkloadError {}

impl From<eua_sim::SimError> for WorkloadError {
    fn from(e: eua_sim::SimError) -> Self {
        WorkloadError::Task(e.to_string())
    }
}

impl From<eua_uam::UamError> for WorkloadError {
    fn from(e: eua_uam::UamError) -> Self {
        WorkloadError::Pattern(e.to_string())
    }
}

impl From<eua_tuf::TufError> for WorkloadError {
    fn from(e: eua_tuf::TufError) -> Self {
        WorkloadError::Task(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        for e in [
            WorkloadError::NoApps,
            WorkloadError::InvalidLoad { value: -1.0 },
            WorkloadError::Task("x".into()),
            WorkloadError::Pattern("y".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_wrap_messages() {
        let e: WorkloadError = eua_sim::SimError::EmptyTaskSet.into();
        assert!(matches!(e, WorkloadError::Task(_)));
        let e: WorkloadError = eua_uam::UamError::ZeroWindow.into();
        assert!(matches!(e, WorkloadError::Pattern(_)));
    }
}
