//! Synthetic workload generation for the EUA\* evaluation: the paper's
//! Table 1 applications, task-set synthesis, load scaling, and the ready-
//! made Figure 2 / Figure 3 scenarios.
//!
//! The paper's §5 procedure, reproduced here:
//!
//! 1. three applications A1–A3 with per-app task counts, `⟨a, P⟩`
//!    descriptors, uniformly distributed time windows `P` ("the
//!    synthesized task sets simulate the varied mix of short and long time
//!    windows") and `U^max` ranges;
//! 2. per-task normal cycle demands with `Var(Y) = E(Y)` before scaling;
//! 3. a scale factor `k` applied to every `E(Y)` (and `k²` to every
//!    `Var(Y)`) so the system load `ρ = (1/f_m)·Σ a_i·c_i/D_i` hits the
//!    sweep target.
//!
//! # Example
//!
//! ```
//! use eua_platform::Frequency;
//! use eua_workload::{fig2_workload, TufShape, WorkloadBuilder};
//!
//! # fn main() -> Result<(), eua_workload::WorkloadError> {
//! let f_max = Frequency::from_mhz(100);
//! let w = fig2_workload(0.5, 42, f_max)?;
//! assert_eq!(w.tasks.len(), 18); // 4 + 6 + 8 tasks (Table 1)
//! let load = w.tasks.system_load(f_max);
//! assert!((load - 0.5).abs() < 0.01);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apps;
mod builder;
mod error;
mod scenario;
pub mod universe;

pub use apps::{table1, AppSpec};
pub use builder::{ArrivalStyle, TufShape, Workload, WorkloadBuilder};
pub use error::WorkloadError;
pub use scenario::{fig2_workload, fig3_workload, theorem_workload};
pub use universe::{UniverseFamily, UniverseScenario};
