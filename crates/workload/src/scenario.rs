//! Ready-made workloads for each of the paper's experiments.

use eua_platform::Frequency;
use eua_uam::Assurance;

use crate::apps::table1;
use crate::builder::{ArrivalStyle, TufShape, Workload, WorkloadBuilder};
use crate::error::WorkloadError;

/// The §5.1 / Figure 2 workload: Table 1 task set, **step** TUFs,
/// `{ν = 1, ρ = 0.96}`, periodic arrivals, demands scaled to `load`.
///
/// # Errors
///
/// Propagates synthesis and scaling failures.
pub fn fig2_workload(load: f64, seed: u64, f_max: Frequency) -> Result<Workload, WorkloadError> {
    WorkloadBuilder::new(table1())
        .shape(TufShape::Step)
        .assurance(Assurance::step_default())
        .periodic()
        .build(seed)?
        .scaled_to_load(load, f_max)
}

/// The §5.2 / Figure 3 workload: Table 1 task set, **linear** TUFs with
/// slope `−U^max/P`, `{ν = 0.3, ρ = 0.9}`, UAM `⟨a, P⟩` arrivals,
/// demands scaled to `load`.
///
/// Arrivals are UAM-throttled Poisson (mean `a` per window): the paper's
/// Fig. 3 observation — energy rises with `a` under the same load —
/// hinges on arrival *unpredictability* degrading slack estimation, and
/// a maximal regular burst at every window boundary is perfectly
/// predictable (it makes the `⟨1..3, P⟩` workloads cycle-identical).
///
/// Note the paper holds the load `ρ` (defined through `C_i = a_i·c_i`)
/// constant across the `a` sweep, so higher `a` means proportionally
/// smaller per-job demands.
///
/// # Errors
///
/// Propagates synthesis and scaling failures.
pub fn fig3_workload(
    load: f64,
    a: u32,
    seed: u64,
    f_max: Frequency,
) -> Result<Workload, WorkloadError> {
    WorkloadBuilder::new(table1())
        .shape(TufShape::Linear)
        .assurance(Assurance::linear_default())
        .max_arrivals(a)
        .arrivals(ArrivalStyle::Poisson {
            rate_per_window: f64::from(a),
        })
        .build(seed)?
        .scaled_to_load(load, f_max)
}

/// The §4 theorem-checking workload: periodic tasks with step TUFs under
/// a guaranteed under-load — the conditions of Theorems 2–5.
///
/// # Errors
///
/// Propagates synthesis and scaling failures.
///
/// # Panics
///
/// Panics if `load ≥ 1` (the theorems only hold without CPU overload).
pub fn theorem_workload(load: f64, seed: u64, f_max: Frequency) -> Result<Workload, WorkloadError> {
    assert!(
        load < 1.0,
        "theorem conditions require the absence of overload"
    );
    fig2_workload(load, seed, f_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fm() -> Frequency {
        Frequency::from_mhz(100)
    }

    #[test]
    fn fig2_is_periodic_step_with_paper_assurance() {
        let w = fig2_workload(0.8, 11, fm()).unwrap();
        for (_, t) in w.tasks.iter() {
            assert!(t.tuf().is_step());
            assert!(t.uam().is_periodic());
            assert_eq!(t.assurance().nu(), 1.0);
            assert_eq!(t.assurance().rho(), 0.96);
            // Step + ν = 1 ⇒ D = P.
            assert_eq!(t.critical_offset(), t.uam().window());
        }
        assert!((w.system_load(fm()) - 0.8).abs() < 0.01);
    }

    #[test]
    fn fig3_sweep_preserves_load_across_a() {
        for a in 1..=3 {
            let w = fig3_workload(0.5, a, 13, fm()).unwrap();
            assert!((w.system_load(fm()) - 0.5).abs() < 0.01, "a = {a}");
            for (_, t) in w.tasks.iter() {
                assert_eq!(t.uam().max_arrivals(), a);
                assert!(!t.tuf().is_step());
            }
        }
    }

    #[test]
    fn fig3_per_job_demand_shrinks_with_a() {
        let w1 = fig3_workload(0.5, 1, 13, fm()).unwrap();
        let w3 = fig3_workload(0.5, 3, 13, fm()).unwrap();
        let mean1: f64 = w1.tasks.iter().map(|(_, t)| t.demand().mean()).sum::<f64>();
        let mean3: f64 = w3.tasks.iter().map(|(_, t)| t.demand().mean()).sum::<f64>();
        assert!(
            mean3 < mean1 / 2.0,
            "per-job demand must shrink to hold the load: {mean1} vs {mean3}"
        );
    }

    #[test]
    #[should_panic(expected = "absence of overload")]
    fn theorem_workload_rejects_overload() {
        let _ = theorem_workload(1.2, 1, fm());
    }

    #[test]
    fn theorem_workload_is_underloaded() {
        let w = theorem_workload(0.7, 3, fm()).unwrap();
        assert!(w.system_load(fm()) < 1.0);
    }
}
