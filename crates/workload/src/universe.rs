//! Seed-addressed workload **universes** for chaos campaigns.
//!
//! Table 1 (see [`crate::table1`]) covers the paper's own evaluation;
//! a chaos campaign needs scenario *families* that probe regimes the
//! paper never visited: diurnal arrival curves, heavy-tailed demand,
//! correlated demand surges, mixed-criticality task sets, and loads
//! pinned to the utilization cliff ("sharp utilization thresholds").
//!
//! Every scenario is addressed by `(family, cell, master seed)` and is a
//! **pure function** of that address: the same address produces a
//! bit-identical [`Workload`] on any thread, any `--jobs` count, any
//! host. The chaos runner in `eua-bench` leans on this to make campaign
//! journals resumable and reports byte-reproducible, and the shrinker
//! leans on it to re-check candidate repros.
//!
//! Nothing here is random in the entropy sense: all draws come from a
//! [`SmallRng`] seeded with a mix of the address (see [`cell_seed`]).

use eua_platform::{Frequency, TimeDelta};
use eua_sim::{Task, TaskSet};
use eua_tuf::Tuf;
use eua_uam::demand::DemandModel;
use eua_uam::generator::ArrivalPattern;
use eua_uam::{Assurance, UamSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::Workload;
use crate::error::WorkloadError;

/// One scenario family of the universe. Families differ in which
/// modelling assumption of the paper they stress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UniverseFamily {
    /// Diurnal arrival-rate curves: on/off sources alternating rush-hour
    /// burst phases with silent night phases.
    Diurnal,
    /// Heavy-tailed (Pareto) demand distributions under UAM-throttled
    /// Poisson arrivals — demand far beyond the declared moments'
    /// comfort zone.
    HeavyTail,
    /// Correlated demand surges: one latent factor scales every task's
    /// mean demand, so the Chebyshev budgets are all wrong *together*.
    Correlated,
    /// Mixed-criticality sets: strict `{ν = 1, ρ = 0.96}` step tasks
    /// sharing the processor with permissive linear best-effort tasks.
    MixedCriticality,
    /// UAM-boundary stressors: maximal burst bounds and loads pinned to
    /// the utilization cliff around `ρ = 1`.
    UamBoundary,
}

impl UniverseFamily {
    /// All families, in report order.
    pub const ALL: [UniverseFamily; 5] = [
        UniverseFamily::Diurnal,
        UniverseFamily::HeavyTail,
        UniverseFamily::Correlated,
        UniverseFamily::MixedCriticality,
        UniverseFamily::UamBoundary,
    ];

    /// A stable kebab-case key (journal records and `.scn` names use it).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            UniverseFamily::Diurnal => "diurnal",
            UniverseFamily::HeavyTail => "heavy-tail",
            UniverseFamily::Correlated => "correlated",
            UniverseFamily::MixedCriticality => "mixed-crit",
            UniverseFamily::UamBoundary => "uam-boundary",
        }
    }

    /// The inverse of [`UniverseFamily::key`].
    #[must_use]
    pub fn from_key(key: &str) -> Option<Self> {
        UniverseFamily::ALL.into_iter().find(|f| f.key() == key)
    }

    /// Generates the scenario at `(self, cell)` under `master_seed`,
    /// with demands scaled so the system load at `f_max` hits the
    /// family's sampled target.
    ///
    /// # Errors
    ///
    /// Propagates task/pattern construction and load-scaling failures;
    /// the parameter ranges below are chosen so none occur in practice.
    pub fn generate(
        self,
        cell: u32,
        master_seed: u64,
        f_max: Frequency,
    ) -> Result<UniverseScenario, WorkloadError> {
        let mut rng = SmallRng::seed_from_u64(cell_seed(master_seed, self, cell));
        let shared = sample_shared(&mut rng, self);
        let mut tasks = Vec::with_capacity(shared.tasks);
        let mut patterns = Vec::with_capacity(shared.tasks);
        for k in 0..shared.tasks {
            let p = sample_task_params(&mut rng, self, &shared);
            let window = TimeDelta::from_millis(p.window_ms);
            let tuf = match p.shape {
                Shape::Step => Tuf::step(p.umax, window)?,
                Shape::Linear => Tuf::linear(p.umax, window)?,
            };
            let spec = UamSpec::new(p.arrivals, window)?;
            let demand = match p.demand {
                Demand::Normal { mean, variance } => DemandModel::normal(mean, variance)?,
                Demand::Pareto { mean, alpha } => DemandModel::pareto(mean, alpha)?,
            };
            let task = Task::new(
                format!("{}-{k}", self.key()),
                tuf,
                spec,
                demand,
                Assurance::new(p.nu, p.rho)?,
            )?;
            let pattern = match p.arrival {
                ArrivalKind::Periodic => ArrivalPattern::periodic(window)?,
                ArrivalKind::Burst => ArrivalPattern::window_burst(spec)?,
                ArrivalKind::Poisson { rate_per_window } => {
                    ArrivalPattern::constrained_poisson(spec, rate_per_window)?
                }
                ArrivalKind::OnOff { on, off } => ArrivalPattern::on_off(spec, on, off)?,
            };
            tasks.push(task);
            patterns.push(pattern);
        }
        let workload = Workload {
            tasks: TaskSet::new(tasks)?,
            patterns,
        }
        .scaled_to_load(shared.load, f_max)?;
        Ok(UniverseScenario {
            name: format!("{}-c{cell}-s{master_seed}", self.key()),
            load: shared.load,
            workload,
        })
    }
}

/// One generated scenario of the universe.
#[derive(Debug, Clone, PartialEq)]
pub struct UniverseScenario {
    /// The canonical scenario name: `<family>-c<cell>-s<seed>`.
    pub name: String,
    /// The load the demands were scaled to (at the generator's `f_max`).
    pub load: f64,
    /// The validated task set and its arrival patterns.
    pub workload: Workload,
}

/// Mixes a universe address into one RNG seed (two rounds of the
/// SplitMix64 finalizer over the address words, so neighbouring cells
/// land in unrelated stream positions).
#[must_use]
pub fn cell_seed(master_seed: u64, family: UniverseFamily, cell: u32) -> u64 {
    let family_idx = UniverseFamily::ALL
        .iter()
        .position(|f| *f == family)
        .unwrap_or(0) as u64;
    let mut z = master_seed
        .wrapping_add((family_idx + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(u64::from(cell).wrapping_mul(0xD1B5_4A32_D192_ED03));
    for _ in 0..2 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// TUF shape of one sampled task.
#[derive(Debug, Clone, Copy)]
enum Shape {
    Step,
    Linear,
}

/// Demand distribution of one sampled task.
#[derive(Debug, Clone, Copy)]
enum Demand {
    Normal { mean: f64, variance: f64 },
    Pareto { mean: f64, alpha: f64 },
}

/// Arrival pattern of one sampled task.
#[derive(Debug, Clone, Copy)]
enum ArrivalKind {
    Periodic,
    Burst,
    Poisson { rate_per_window: f64 },
    OnOff { on: u32, off: u32 },
}

/// Per-cell parameters shared by every task of the scenario.
#[derive(Debug, Clone, Copy)]
struct SharedParams {
    tasks: usize,
    load: f64,
    /// The latent demand-surge factor (1.0 outside `Correlated`).
    surge: f64,
}

/// Per-task sampled parameters (plain `Copy` data; the caller raises
/// them into validated library types).
#[derive(Debug, Clone, Copy)]
struct TaskParams {
    window_ms: u64,
    umax: f64,
    arrivals: u32,
    nu: f64,
    rho: f64,
    shape: Shape,
    demand: Demand,
    arrival: ArrivalKind,
}

/// Samples the cell-wide parameters: task count, load target, and the
/// latent surge factor for the `Correlated` family.
// eua-lint: hot
fn sample_shared(rng: &mut SmallRng, family: UniverseFamily) -> SharedParams {
    let tasks = rng.gen_range(4usize..=10);
    let load = match family {
        // The cliff probe stays pinned to the utilization threshold.
        UniverseFamily::UamBoundary => rng.gen_range(0.92..=1.10),
        _ => rng.gen_range(0.5..=1.5),
    };
    let surge = match family {
        UniverseFamily::Correlated => rng.gen_range(0.6..=1.8),
        _ => 1.0,
    };
    SharedParams { tasks, load, surge }
}

/// Samples one task's parameters. This is the generator's inner
/// sampling loop body: pure arithmetic over the cell RNG, no
/// allocation — the caller owns all buffer growth.
// eua-lint: hot
fn sample_task_params(
    rng: &mut SmallRng,
    family: UniverseFamily,
    shared: &SharedParams,
) -> TaskParams {
    let base_mean = rng.gen_range(1.0e5..=1.0e6) * shared.surge;
    match family {
        UniverseFamily::Diurnal => {
            let a = rng.gen_range(2u32..=4);
            TaskParams {
                window_ms: rng.gen_range(20u64..=500),
                umax: rng.gen_range(10.0..=100.0),
                arrivals: a,
                nu: 1.0,
                rho: 0.9,
                shape: Shape::Step,
                demand: Demand::Normal {
                    mean: base_mean,
                    variance: base_mean,
                },
                // Rush-hour phases of maximal bursts, then quiet nights.
                arrival: ArrivalKind::OnOff {
                    on: rng.gen_range(2u32..=4),
                    off: rng.gen_range(2u32..=8),
                },
            }
        }
        UniverseFamily::HeavyTail => {
            let a = rng.gen_range(1u32..=3);
            TaskParams {
                window_ms: rng.gen_range(50u64..=700),
                umax: rng.gen_range(10.0..=100.0),
                arrivals: a,
                nu: 0.3,
                rho: 0.9,
                shape: Shape::Linear,
                // α ∈ (2, 3.5]: both moments exist (the Chebyshev budget
                // is finite) but the tail dominates any normal of the
                // same mean.
                demand: Demand::Pareto {
                    mean: base_mean,
                    alpha: rng.gen_range(2.2..=3.5),
                },
                arrival: ArrivalKind::Poisson {
                    rate_per_window: f64::from(a) * rng.gen_range(0.5..=1.5),
                },
            }
        }
        UniverseFamily::Correlated => TaskParams {
            window_ms: rng.gen_range(50u64..=1_000),
            umax: rng.gen_range(10.0..=100.0),
            arrivals: rng.gen_range(1u32..=3),
            nu: 1.0,
            rho: 0.96,
            shape: Shape::Step,
            demand: Demand::Normal {
                mean: base_mean,
                variance: base_mean,
            },
            arrival: ArrivalKind::Burst,
        },
        UniverseFamily::MixedCriticality => {
            if rng.gen_bool(0.5) {
                // Critical: strict assurance, high utility, tame arrivals.
                TaskParams {
                    window_ms: rng.gen_range(50u64..=200),
                    umax: rng.gen_range(50.0..=100.0),
                    arrivals: 1,
                    nu: 1.0,
                    rho: 0.96,
                    shape: Shape::Step,
                    demand: Demand::Normal {
                        mean: base_mean,
                        variance: base_mean,
                    },
                    arrival: ArrivalKind::Periodic,
                }
            } else {
                // Best-effort: permissive assurance, bursty arrivals.
                let a = rng.gen_range(2u32..=4);
                TaskParams {
                    window_ms: rng.gen_range(200u64..=2_000),
                    umax: rng.gen_range(5.0..=20.0),
                    arrivals: a,
                    nu: 0.3,
                    rho: rng.gen_range(0.5..=0.9),
                    shape: Shape::Linear,
                    demand: Demand::Normal {
                        mean: base_mean,
                        variance: base_mean,
                    },
                    arrival: ArrivalKind::Poisson {
                        rate_per_window: f64::from(a),
                    },
                }
            }
        }
        UniverseFamily::UamBoundary => TaskParams {
            window_ms: rng.gen_range(10u64..=60),
            umax: rng.gen_range(10.0..=100.0),
            arrivals: rng.gen_range(4u32..=8),
            nu: 1.0,
            rho: 0.9,
            shape: Shape::Step,
            // Near-deterministic demand keeps the Chebyshev slack tiny,
            // so the sampled load *is* the effective load — the cliff is
            // sharp, as the threshold literature predicts.
            demand: Demand::Normal {
                mean: base_mean,
                variance: base_mean * 0.05,
            },
            arrival: ArrivalKind::Burst,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fm() -> Frequency {
        Frequency::from_mhz(100)
    }

    #[test]
    fn every_family_generates_valid_scenarios() {
        for family in UniverseFamily::ALL {
            for cell in 0..4 {
                let s = family
                    .generate(cell, 42, fm())
                    .unwrap_or_else(|e| panic!("{} cell {cell}: {e}", family.key()));
                assert!(!s.workload.tasks.is_empty(), "{}", family.key());
                assert_eq!(s.workload.patterns.len(), s.workload.tasks.len());
                let got = s.workload.system_load(fm());
                assert!(
                    (got - s.load).abs() / s.load < 0.02,
                    "{} cell {cell}: load {got} vs target {}",
                    family.key(),
                    s.load
                );
            }
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_address() {
        for family in [UniverseFamily::Diurnal, UniverseFamily::HeavyTail] {
            let a = family.generate(3, 7, fm()).expect("generates");
            let b = family.generate(3, 7, fm()).expect("generates");
            assert_eq!(a, b);
            let c = family.generate(4, 7, fm()).expect("generates");
            assert_ne!(a.workload, c.workload, "{}", family.key());
            let d = family.generate(3, 8, fm()).expect("generates");
            assert_ne!(a.workload, d.workload, "{}", family.key());
        }
    }

    #[test]
    fn family_keys_round_trip() {
        for family in UniverseFamily::ALL {
            assert_eq!(UniverseFamily::from_key(family.key()), Some(family));
        }
        assert_eq!(UniverseFamily::from_key("bogus"), None);
    }

    #[test]
    fn cell_seeds_are_spread() {
        let mut seen = std::collections::BTreeSet::new();
        for family in UniverseFamily::ALL {
            for cell in 0..100 {
                seen.insert(cell_seed(1, family, cell));
            }
        }
        assert_eq!(seen.len(), 500, "cell seeds must not collide");
    }

    #[test]
    fn boundary_family_sits_on_the_cliff() {
        for cell in 0..8 {
            let s = UniverseFamily::UamBoundary
                .generate(cell, 11, fm())
                .expect("generates");
            assert!(
                (0.92..=1.10).contains(&s.load),
                "cell {cell}: load {} off the cliff",
                s.load
            );
        }
    }
}
