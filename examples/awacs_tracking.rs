//! The paper's motivating domain: an AWACS-style airborne tracking system
//! (Clark et al.) with the Figure 1 TUF shapes.
//!
//! Three activity classes share the CPU:
//!
//! * **track association** — Fig. 1(a): full utility until the critical
//!   time, then a cliff; mission-critical (high `U^max`);
//! * **plot correlation** — Fig. 1(b): utility halves past `t_f`;
//! * **display update** — a classical step deadline, least important.
//!
//! During a sensor surge (overload) a deadline scheduler thrashes on
//! whatever is most *urgent*; the utility-accrual EUA\* sheds the least
//! *important* work instead, keeping track association alive.
//!
//! Run with: `cargo run --example awacs_tracking`

use eua::core::{EdfPolicy, Eua};
use eua::platform::{EnergySetting, TimeDelta};
use eua::sim::{Engine, Platform, SchedulerPolicy, SimConfig, Task, TaskId, TaskSet};
use eua::tuf::presets;
use eua::uam::demand::DemandModel;
use eua::uam::generator::ArrivalPattern;
use eua::uam::{Assurance, UamSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = TimeDelta::from_millis;

    // Sensor surge: up to 4 track-association activations per 50 ms.
    let track_spec = UamSpec::new(4, ms(50))?;
    let track = Task::new(
        "track-association",
        presets::track_association(100.0, ms(40))?,
        track_spec,
        DemandModel::normal(1_200_000.0, 1_200_000.0)?,
        Assurance::new(1.0, 0.9)?,
    )?;

    let corr_spec = UamSpec::new(2, ms(100))?;
    let correlation = Task::new(
        "plot-correlation",
        presets::plot_correlation(40.0, ms(50))?,
        corr_spec,
        DemandModel::normal(2_000_000.0, 2_000_000.0)?,
        Assurance::new(0.5, 0.9)?,
    )?;

    let display_spec = UamSpec::periodic(ms(100))?;
    let display = Task::new(
        "display-update",
        presets::step_deadline(5.0, ms(100))?,
        display_spec,
        DemandModel::normal(1_500_000.0, 1_500_000.0)?,
        Assurance::new(1.0, 0.9)?,
    )?;

    let tasks = TaskSet::new(vec![track, correlation, display])?;
    let patterns = vec![
        ArrivalPattern::window_burst(track_spec)?,
        ArrivalPattern::random_burst(corr_spec)?,
        ArrivalPattern::periodic(ms(100))?,
    ];
    let platform = Platform::powernow(EnergySetting::e1());
    println!(
        "surge load: {:.2} (sustained overload)\n",
        tasks.system_load(platform.f_max())
    );

    let config = SimConfig::new(TimeDelta::from_secs(10));
    let mut eua = Eua::new();
    let mut edf = EdfPolicy::max_speed().without_abort();
    let policies: [&mut dyn SchedulerPolicy; 2] = [&mut eua, &mut edf];
    for policy in policies {
        let name = policy.name().to_string();
        let out = Engine::run(&tasks, &patterns, &platform, policy, &config, 3)?;
        let m = &out.metrics;
        println!("{name}:");
        for (id, task) in tasks.iter() {
            let tm = m.task(id);
            println!(
                "  {:>18}: {:>3}/{:<3} jobs completed, utility {:>8.1}/{:>8.1}",
                task.name(),
                tm.completed,
                tm.arrived,
                tm.utility,
                tm.max_utility,
            );
        }
        println!(
            "  total utility {:.1} ({:.0}% of ceiling)\n",
            m.total_utility,
            100.0 * m.utility_ratio()
        );
    }

    // The headline UA property: EUA* must keep the mission-critical task
    // healthy through the surge.
    let out = Engine::run(&tasks, &patterns, &platform, &mut Eua::new(), &config, 3)?;
    let track_rate = out.metrics.task(TaskId(0)).completion_rate();
    println!(
        "EUA* track-association completion rate through the surge: {:.0}%",
        100.0 * track_rate
    );
    Ok(())
}
