//! The paper's future-work item, working: a battery-limited mission where
//! the scheduler must ration a fixed energy pool across a surveillance
//! workload, spending it on the highest-utility-per-joule work first.
//!
//! Run with: `cargo run --example energy_budget`

use eua::core::{BudgetedEua, Eua};
use eua::platform::{EnergySetting, TimeDelta};
use eua::sim::{Engine, Platform, SimConfig};
use eua::workload::fig2_workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::powernow(EnergySetting::e1());
    let workload = fig2_workload(0.7, 42, platform.f_max())?;
    let config = SimConfig::new(TimeDelta::from_secs(10));

    // How much would an unconstrained mission cost?
    let full = Engine::run(
        &workload.tasks,
        &workload.patterns,
        &platform,
        &mut Eua::new(),
        &config,
        9,
    )?
    .metrics;
    println!(
        "unconstrained EUA*: utility {:.1}, energy {:.3e} ({} jobs)\n",
        full.total_utility,
        full.energy,
        full.jobs_completed()
    );

    println!(
        "{:>12} {:>12} {:>12} {:>10}",
        "battery", "utility", "% of full", "jobs"
    );
    for percent in [5u32, 15, 30, 50, 75, 100] {
        let budget = full.energy * f64::from(percent) / 100.0;
        let m = Engine::run(
            &workload.tasks,
            &workload.patterns,
            &platform,
            &mut BudgetedEua::new(budget),
            &config,
            9,
        )?
        .metrics;
        println!(
            "{:>11}% {:>12.1} {:>11.1}% {:>10}",
            percent,
            m.total_utility,
            100.0 * m.total_utility / full.total_utility,
            m.jobs_completed(),
        );
        assert!(
            m.energy <= budget * 1.02 + 1.0,
            "budget overdraw: {} > {budget}",
            m.energy
        );
    }

    println!(
        "\nUtility tracks the battery almost linearly: the budgeted policy\n\
         spends each joule on the highest-UER job available, then stops."
    );
    Ok(())
}
