//! A battery-powered mobile multimedia device — the paper's
//! energy-critical setting. Video decode, audio decode, and a background
//! sync task share a PowerNow!-class DVS processor; we compare the energy
//! bill of EUA\* against always-full-speed EDF under all three Table 2
//! energy settings, and translate the savings into battery life.
//!
//! Run with: `cargo run --example mobile_multimedia`

use eua::core::{EdfPolicy, Eua};
use eua::platform::{EnergySetting, TimeDelta};
use eua::sim::{Engine, Platform, SchedulerPolicy, SimConfig, Task, TaskSet};
use eua::tuf::Tuf;
use eua::uam::demand::DemandModel;
use eua::uam::generator::ArrivalPattern;
use eua::uam::{Assurance, UamSpec};
use eua::workload::Workload;

fn build_workload() -> Result<Workload, Box<dyn std::error::Error>> {
    let ms = TimeDelta::from_millis;

    // 30 fps video: frames are soft — a late frame is worth progressively
    // less until the next frame replaces it.
    let video_p = ms(33);
    let video = Task::new(
        "video-decode",
        Tuf::linear(30.0, video_p)?,
        UamSpec::periodic(video_p)?,
        DemandModel::normal(900_000.0, 900_000.0)?,
        Assurance::new(0.5, 0.95)?,
    )?;

    // Audio: hard 10 ms cadence, tiny jobs, must essentially never glitch.
    let audio_p = ms(10);
    let audio = Task::new(
        "audio-decode",
        Tuf::step(50.0, audio_p)?,
        UamSpec::periodic(audio_p)?,
        DemandModel::normal(80_000.0, 80_000.0)?,
        Assurance::new(1.0, 0.99)?,
    )?;

    // Background sync: bursty aperiodic work, worth little, huge window.
    let sync_spec = UamSpec::new(3, ms(500))?;
    let sync = Task::new(
        "background-sync",
        Tuf::linear(2.0, ms(500))?,
        sync_spec,
        DemandModel::normal(2_000_000.0, 2_000_000.0)?,
        Assurance::new(0.1, 0.9)?,
    )?;

    Ok(Workload {
        tasks: TaskSet::new(vec![video, audio, sync])?,
        patterns: vec![
            ArrivalPattern::periodic(video_p)?,
            ArrivalPattern::periodic(audio_p)?,
            ArrivalPattern::constrained_poisson(sync_spec, 1.5)?,
        ],
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = build_workload()?;
    let config = SimConfig::new(TimeDelta::from_secs(10));
    println!(
        "workload load at f_m: {:.2}\n",
        w.tasks.system_load(eua::platform::Frequency::from_mhz(100))
    );

    println!(
        "{:<8} {:>14} {:>14} {:>9} {:>12}",
        "setting", "energy(eua)", "energy(edf)", "saving", "battery gain"
    );
    for setting in EnergySetting::all() {
        let platform = Platform::powernow(setting);
        let mut eua = Eua::new();
        let mut edf = EdfPolicy::max_speed();
        let run = |p: &mut dyn SchedulerPolicy| {
            Engine::run(&w.tasks, &w.patterns, &platform, p, &config, 17).map(|o| o.metrics)
        };
        let m_eua = run(&mut eua)?;
        let m_edf = run(&mut edf)?;
        assert!(
            m_eua.meets_assurances(&w.tasks),
            "EUA* must keep the QoS contract"
        );
        let saving = 1.0 - m_eua.energy / m_edf.energy;
        // Same charge, lower average power ⇒ battery life scales with the
        // inverse energy ratio.
        let battery_gain = m_edf.energy / m_eua.energy;
        println!(
            "{:<8} {:>14.3e} {:>14.3e} {:>8.1}% {:>11.2}x",
            setting.name(),
            m_eua.energy,
            m_edf.energy,
            100.0 * saving,
            battery_gain,
        );
    }
    println!(
        "\nUnder the CPU-only model (E1) DVS pays off most; with heavy static\n\
         consumption (E3) the UER clamp keeps EUA* near the energy-optimal\n\
         frequency instead of racing to the bottom."
    );
    Ok(())
}
