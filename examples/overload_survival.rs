#![allow(clippy::expect_used)] // test/demo code: panicking on bad setup is the point

//! The domino effect, reproduced: sweep the offered load from under-load
//! deep into overload and watch a non-aborting deadline scheduler's
//! accrued utility collapse while EUA\* degrades gracefully.
//!
//! This is the single-figure summary of the paper's Figure 2(a)/(c)
//! overload story.
//!
//! Run with: `cargo run --example overload_survival`

use eua::core::make_policy;
use eua::platform::{EnergySetting, TimeDelta};
use eua::sim::{Engine, Platform, SimConfig};
use eua::workload::fig2_workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::powernow(EnergySetting::e1());
    let config = SimConfig::new(TimeDelta::from_secs(10));
    let policies = ["eua", "edf", "edf-na"];

    println!("utility ratio (accrued / ceiling) per policy:\n");
    print!("{:>5}", "load");
    for p in &policies {
        print!("{:>10}", p);
    }
    println!();

    for step in 1..=6 {
        let load = 0.3 * f64::from(step); // 0.3 .. 1.8
        let workload = fig2_workload(load, 42, platform.f_max())?;
        print!("{load:>5.1}");
        for name in &policies {
            let mut policy = make_policy(name).expect("known policy");
            let out = Engine::run(
                &workload.tasks,
                &workload.patterns,
                &platform,
                &mut policy,
                &config,
                5,
            )?;
            print!("{:>10.3}", out.metrics.utility_ratio());
        }
        println!();
    }

    println!(
        "\nPast load 1.0 the non-aborting scheduler (edf-na) suffers the domino\n\
         effect — it burns the CPU on jobs that are already doomed, so almost\n\
         nothing finishes — while EUA* sheds low-UER jobs and keeps accruing."
    );
    Ok(())
}
