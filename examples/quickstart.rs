//! Quickstart: schedule one bursty control task with EUA\* and compare it
//! against always-full-speed EDF on completions, assurance, and energy.
//!
//! Run with: `cargo run --example quickstart`

use eua::core::{EdfPolicy, Eua};
use eua::platform::{EnergySetting, TimeDelta};
use eua::sim::{Engine, Platform, SchedulerPolicy, SimConfig, Task, TaskSet};
use eua::tuf::Tuf;
use eua::uam::demand::DemandModel;
use eua::uam::generator::ArrivalPattern;
use eua::uam::{Assurance, UamSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A control loop: at most 2 activations in any 10 ms window, each
    // needing ~150k cycles (about 1.5 ms at the 100 MHz top speed), with
    // a hard-deadline-style step TUF that must be met 96% of the time.
    let window = TimeDelta::from_millis(10);
    let spec = UamSpec::new(2, window)?;
    let task = Task::new(
        "control-loop",
        Tuf::step(10.0, window)?,
        spec,
        DemandModel::normal(150_000.0, 150_000.0)?,
        Assurance::new(1.0, 0.96)?,
    )?;
    println!("task: {task}");
    println!("  chebyshev allocation: {} cycles", task.allocation().get());
    println!("  critical time:        {}", task.critical_offset());

    let tasks = TaskSet::new(vec![task])?;
    let patterns = vec![ArrivalPattern::window_burst(spec)?];
    let platform = Platform::powernow(EnergySetting::e2());
    let config = SimConfig::new(TimeDelta::from_secs(10));

    let mut eua = Eua::new();
    let mut edf = EdfPolicy::max_speed();
    let policies: [&mut dyn SchedulerPolicy; 2] = [&mut eua, &mut edf];
    let mut energies = Vec::new();
    for policy in policies {
        let name = policy.name().to_string();
        let out = Engine::run(&tasks, &patterns, &platform, policy, &config, 7)?;
        let m = &out.metrics;
        println!(
            "\n{name}: {} of {} jobs completed, assurances {}",
            m.jobs_completed(),
            m.jobs_arrived(),
            if m.meets_assurances(&tasks) {
                "MET"
            } else {
                "missed"
            },
        );
        println!(
            "  accrued utility: {:.1} / {:.1}",
            m.total_utility, m.max_possible_utility
        );
        println!("  energy:          {:.3e}", m.energy);
        energies.push((name, m.energy));
    }

    let saving = 100.0 * (1.0 - energies[0].1 / energies[1].1);
    println!(
        "\nEUA* used {saving:.1}% less energy than always-100MHz EDF for the \
         same assurance."
    );
    Ok(())
}
