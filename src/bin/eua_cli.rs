//! `eua-cli` — run one scheduling simulation from the command line.
//!
//! ```text
//! eua-cli [--policy NAME] [--scenario fig2|fig3] [--load X] [--a N]
//!         [--seconds S] [--energy e1|e2|e3] [--seed K] [--per-task]
//! ```
//!
//! Examples:
//!
//! ```sh
//! cargo run --bin eua-cli -- --policy eua --load 0.8
//! cargo run --bin eua-cli -- --policy edf-na --load 1.6 --energy e3 --per-task
//! cargo run --bin eua-cli -- --scenario fig3 --a 3 --load 0.6
//! ```

use eua::core::{available_policies, make_policy};
use eua::platform::{EnergySetting, TimeDelta};
use eua::sim::{Engine, Platform, SimConfig};
use eua::workload::{fig2_workload, fig3_workload};

struct Args {
    policy: String,
    scenario: String,
    load: f64,
    a: u32,
    seconds: u64,
    energy: EnergySetting,
    seed: u64,
    per_task: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        policy: "eua".into(),
        scenario: "fig2".into(),
        load: 0.8,
        a: 1,
        seconds: 10,
        energy: EnergySetting::e1(),
        seed: 42,
        per_task: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--policy" => {
                args.policy = value(&argv, i, "--policy")?;
                i += 2;
            }
            "--scenario" => {
                args.scenario = value(&argv, i, "--scenario")?;
                i += 2;
            }
            "--load" => {
                args.load = value(&argv, i, "--load")?
                    .parse()
                    .map_err(|e| format!("--load: {e}"))?;
                i += 2;
            }
            "--a" => {
                args.a = value(&argv, i, "--a")?
                    .parse()
                    .map_err(|e| format!("--a: {e}"))?;
                i += 2;
            }
            "--seconds" => {
                args.seconds = value(&argv, i, "--seconds")?
                    .parse()
                    .map_err(|e| format!("--seconds: {e}"))?;
                i += 2;
            }
            "--energy" => {
                args.energy = match value(&argv, i, "--energy")?.as_str() {
                    "e1" => EnergySetting::e1(),
                    "e2" => EnergySetting::e2(),
                    "e3" => EnergySetting::e3(),
                    other => return Err(format!("unknown energy setting {other}")),
                };
                i += 2;
            }
            "--seed" => {
                args.seed = value(&argv, i, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--per-task" => {
                args.per_task = true;
                i += 1;
            }
            "--help" | "-h" => {
                println!(
                    "usage: eua-cli [--policy NAME] [--scenario fig2|fig3] [--load X] \
                     [--a N] [--seconds S] [--energy e1|e2|e3] [--seed K] [--per-task]\n\
                     policies: {}",
                    available_policies().join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let platform = Platform::powernow(args.energy);
    let workload = match args.scenario.as_str() {
        "fig2" => fig2_workload(args.load, args.seed, platform.f_max()),
        "fig3" => fig3_workload(args.load, args.a, args.seed, platform.f_max()),
        other => {
            eprintln!("error: unknown scenario {other} (use fig2 or fig3)");
            std::process::exit(2);
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("error: workload synthesis failed: {e}");
        std::process::exit(1);
    });

    let Some(mut policy) = make_policy(&args.policy) else {
        eprintln!(
            "error: unknown policy {} (choose from: {})",
            args.policy,
            available_policies().join(", ")
        );
        std::process::exit(2);
    };

    let config = SimConfig::new(TimeDelta::from_secs(args.seconds));
    let out = Engine::run(
        &workload.tasks,
        &workload.patterns,
        &platform,
        &mut policy,
        &config,
        args.seed,
    )
    .unwrap_or_else(|e| {
        eprintln!("error: simulation failed: {e}");
        std::process::exit(1);
    });

    let m = &out.metrics;
    println!("policy:   {}", args.policy);
    println!("platform: {platform}");
    println!(
        "scenario: {} at load {:.2} over {} s",
        args.scenario, args.load, args.seconds
    );
    println!();
    println!("{m}");
    println!("utility/energy: {:.3e}", m.utility_per_energy());
    println!(
        "busy {:.1}% of horizon, {} context switches, {} preemptions, {} frequency changes",
        100.0 * m.busy_time.as_secs_f64() / m.horizon.as_secs_f64(),
        m.context_switches,
        m.preemptions,
        m.frequency_changes,
    );
    println!(
        "assurances: {}",
        if m.meets_assurances(&workload.tasks) {
            "MET for every task"
        } else {
            "violated"
        }
    );

    if args.per_task {
        println!();
        println!(
            "{:<10} {:>7} {:>9} {:>8} {:>10} {:>10} {:>9}",
            "task", "arrived", "completed", "aborted", "utility", "ceiling", "assured"
        );
        for (id, task) in workload.tasks.iter() {
            let tm = m.task(id);
            println!(
                "{:<10} {:>7} {:>9} {:>8} {:>10.1} {:>10.1} {:>8.1}%",
                task.name(),
                tm.arrived,
                tm.completed,
                tm.aborted_by_termination + tm.aborted_by_policy,
                tm.utility,
                tm.max_utility,
                100.0 * tm.assurance_rate().unwrap_or(0.0),
            );
        }
    }
}
