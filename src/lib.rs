//! # eua — Energy-Efficient Utility-Accrual Real-Time Scheduling
//!
//! A full reproduction of *"Energy-Efficient, Utility Accrual Real-Time
//! Scheduling Under the Unimodal Arbitrary Arrival Model"* (Wu, Ravindran
//! & Jensen, DATE 2005): the **EUA\*** scheduling algorithm, every
//! substrate it needs (time/utility functions, the UAM arrival model,
//! stochastic demand models, a DVS platform model, and a discrete-event
//! uniprocessor simulator), the baselines it is evaluated against, and a
//! harness regenerating every figure of the paper's evaluation.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`tuf`] | `eua-tuf` | non-increasing time/utility functions and critical-time inversion |
//! | [`uam`] | `eua-uam` | `⟨a, P⟩` arrival descriptors, generators, demand models, Chebyshev allocation |
//! | [`platform`] | `eua-platform` | DVS frequency tables, Martin's energy model (settings E1–E3) |
//! | [`sim`] | `eua-sim` | the discrete-event simulator, policies' [`sim::SchedulerPolicy`] contract, metrics |
//! | [`core`] | `eua-core` | **EUA\***, EDF/CC-EDF/LA-EDF baselines, DASA, the Algorithm 2 DVS analysis |
//! | [`workload`] | `eua-workload` | Table 1 applications, load scaling, Figure 2/3 scenarios |
//! | [`analyze`] | `eua-analyze` | static pre-flight diagnostics over scenarios and shipped examples |
//! | [`audit`] | `eua-audit` | offline translation validation of engine decision certificates |
//! | [`errors`] | — | every workspace error type gathered in one place |
//!
//! # Quickstart
//!
//! ```
//! use eua::core::Eua;
//! use eua::platform::{EnergySetting, TimeDelta};
//! use eua::sim::{Engine, Platform, SimConfig, Task, TaskSet};
//! use eua::tuf::Tuf;
//! use eua::uam::demand::DemandModel;
//! use eua::uam::generator::ArrivalPattern;
//! use eua::uam::{Assurance, UamSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 100 Hz control task: at most 2 arrivals per 10 ms window, ~150k
//! // cycles per job, must accrue full utility 96% of the time.
//! let p = TimeDelta::from_millis(10);
//! let task = Task::new(
//!     "control",
//!     Tuf::step(10.0, p)?,
//!     UamSpec::new(2, p)?,
//!     DemandModel::normal(150_000.0, 150_000.0)?,
//!     Assurance::new(1.0, 0.96)?,
//! )?;
//! let tasks = TaskSet::new(vec![task])?;
//! let patterns = vec![ArrivalPattern::window_burst(UamSpec::new(2, p)?)?];
//!
//! let platform = Platform::powernow(EnergySetting::e2());
//! let config = SimConfig::new(TimeDelta::from_secs(2));
//! let out = Engine::run(&tasks, &patterns, &platform, &mut Eua::new(), &config, 1)?;
//! assert!(out.metrics.meets_assurances(&tasks));
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! figure-regeneration harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The paper's primary contribution: EUA\* and the baseline policies.
pub mod core {
    pub use eua_core::*;
}

/// DVS platform model: frequencies, energy, units.
pub mod platform {
    pub use eua_platform::*;
}

/// The discrete-event scheduling simulator.
pub mod sim {
    pub use eua_sim::*;
}

/// Time/utility functions.
pub mod tuf {
    pub use eua_tuf::*;
}

/// The unimodal arbitrary arrival model and stochastic demands.
pub mod uam {
    pub use eua_uam::*;
}

/// Synthetic workloads for the paper's evaluation.
pub mod workload {
    pub use eua_workload::*;
}

/// Static pre-flight analysis: scenario specs, diagnostic passes, and
/// the stable diagnostic-code registry behind the `eua-analyze` CLI.
pub mod analyze {
    pub use eua_analyze::*;
}

/// Offline translation validation of decision certificates: the checks
/// behind the `eua-audit` CLI.
pub mod audit {
    pub use eua_audit::*;
}

/// Every workspace error type in one place.
///
/// All of them share the same contract: lowercase `Display` messages
/// without trailing periods, `std::error::Error` with `source()`
/// returning the typed underlying error where one exists
/// (`uam → sim → workload` chains stay walkable end to end), and
/// `From` impls along the crate dependency edges so `?` propagates
/// without stringification.
pub mod errors {
    pub use eua_analyze::ParseError;
    pub use eua_platform::PlatformError;
    pub use eua_sim::SimError;
    pub use eua_tuf::TufError;
    pub use eua_uam::UamError;
    pub use eua_workload::WorkloadError;
}
