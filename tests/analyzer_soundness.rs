#![allow(clippy::unwrap_used, clippy::expect_used)] // test code: panicking on bad setup is the point

//! Simulator-backed soundness gate for the semantic analyzer.
//!
//! `eua-analyze`'s demand-bound engine makes two falsifiable claims:
//!
//! * **Feasible is sound**: when the quantized upper model fits at `f`,
//!   fault-free simulation at a fixed `f` under the UAM worst case
//!   (synchronized window bursts, full allocations demanded) meets every
//!   `{ν, ρ}` assurance — every observable job accrues `≥ ν·U_max`.
//! * **Infeasible witnesses are real**: the reported window genuinely
//!   overloads (`h(L) > f·L` recomputed through `eua-core`'s independent
//!   demand-bound path), and simulation over that window leaves at least
//!   one observable job under its assurance.
//!
//! Property-based: scenarios are drawn at random, lowered through the
//! analyzer IR, and each per-frequency verdict is checked against a
//! discrete-event simulation dispatched through `eua-sim`'s worker pool.
//! Deterministic demands are used so the simulated load equals the
//! allocation-level load the analyzer reasons about exactly; the
//! non-aborting EDF baseline is the optimal uniprocessor scheduler the
//! Feasible claim quantifies over.
//!
//! Case budget: `EUA_SOUNDNESS_CASES` (default 24; ci.sh smoke uses 8).

use eua::analyze::{frequency_verdicts, lower, verdict_at_fmax, ScenarioSpec, Verdict};
use eua::analyze::{DemandSpec, EnergySpec, TaskSpec, TufSpec};
use eua::core::{demand_bound, EdfPolicy};
use eua::platform::{EnergySetting, FrequencyTable, TimeDelta};
use eua::sim::{map_parallel, Engine, Platform, SimConfig, TaskSet};
use eua::uam::generator::ArrivalPattern;
use proptest::prelude::*;

/// Per-run case budget, overridable for CI smoke runs.
fn soundness_cases() -> u32 {
    std::env::var("EUA_SOUNDNESS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

/// Witness intervals past this are asserted arithmetically but not
/// simulated (the event count would dominate the suite's runtime).
const MAX_SIMULATED_WITNESS_US: u64 = 10_000_000;

/// One randomly drawn task, in analyzer-independent form.
#[derive(Debug, Clone)]
struct CaseTask {
    window_us: u64,
    arrivals: u32,
    cycles: u64,
    /// `true`: step TUF at the window edge with ν = 1 (hard deadline).
    /// `false`: linear decay to `2P` with ν = 0.5 (critical time = `P`).
    step: bool,
    umax: f64,
    rho: f64,
}

impl CaseTask {
    /// The raw spec the analyzer sees.
    fn to_spec(&self, idx: usize) -> TaskSpec {
        let (tuf, nu) = if self.step {
            (
                TufSpec::Step {
                    umax: self.umax,
                    step_at_us: self.window_us,
                    termination_us: self.window_us,
                },
                1.0,
            )
        } else {
            (
                TufSpec::Linear {
                    umax: self.umax,
                    termination_us: 2 * self.window_us,
                },
                0.5,
            )
        };
        TaskSpec {
            name: format!("t{idx}"),
            tuf,
            max_arrivals: f64::from(self.arrivals),
            window_us: self.window_us,
            demand: DemandSpec::Deterministic {
                #[allow(clippy::cast_precision_loss)] // ≤ 600k cycles: exact in f64
                cycles: self.cycles as f64,
            },
            nu,
            rho: self.rho,
            declared_allocation: None,
            arrival: None,
        }
    }

    fn termination_us(&self) -> u64 {
        if self.step {
            self.window_us
        } else {
            2 * self.window_us
        }
    }
}

fn task_strategy() -> impl Strategy<Value = CaseTask> {
    (
        prop_oneof![Just(5_000u64), Just(10_000), Just(20_000), Just(50_000)],
        1u32..=3,
        1u64..=60,
        any::<bool>(),
        prop_oneof![Just(1.0f64), Just(10.0)],
        prop_oneof![Just(0.5f64), Just(0.9), Just(0.96)],
    )
        .prop_map(|(window_us, arrivals, k, step, umax, rho)| CaseTask {
            window_us,
            arrivals,
            // Integer multiples of 10k cycles: the Chebyshev allocation of
            // a deterministic demand is the demand itself, no rounding gap.
            cycles: k * 10_000,
            step,
            umax,
            rho,
        })
}

fn case_strategy() -> impl Strategy<Value = (Vec<CaseTask>, Vec<u64>)> {
    (
        proptest::collection::vec(task_strategy(), 1..=3),
        prop_oneof![
            Just(vec![100u64]),
            Just(vec![50, 100]),
            Just(vec![25, 50, 75, 100]),
            // The AMD PowerNow! table the paper's platform model uses.
            Just(vec![36, 55, 64, 73, 82, 91, 100]),
        ],
    )
}

fn scenario_from(tasks: &[CaseTask], freqs: &[u64]) -> ScenarioSpec {
    ScenarioSpec {
        name: "soundness-case".into(),
        frequencies_mhz: freqs.to_vec(),
        energy: EnergySpec::e1(),
        tasks: tasks
            .iter()
            .enumerate()
            .map(|(i, t)| t.to_spec(i))
            .collect(),
        faults: None,
    }
}

/// Raises the case into the simulator types: the validated task set and
/// the synchronized window-burst patterns realizing the UAM worst case.
fn simulator_workload(spec: &ScenarioSpec) -> (TaskSet, Vec<ArrivalPattern>) {
    let tasks: Vec<_> = spec
        .tasks
        .iter()
        .map(|t| t.to_task().expect("generated tasks are valid"))
        .collect();
    let patterns: Vec<_> = tasks
        .iter()
        .map(|t| ArrivalPattern::window_burst(*t.uam()).expect("window burst"))
        .collect();
    (TaskSet::new(tasks).expect("task set"), patterns)
}

/// One simulation at a fixed frequency; returns `(Σ assured, Σ observable,
/// meets every {ν, ρ})` over the task set.
fn simulate_fixed(
    tasks: &TaskSet,
    patterns: &[ArrivalPattern],
    mhz: u64,
    horizon_us: u64,
) -> (u64, u64, bool) {
    let platform = Platform::new(FrequencyTable::fixed(mhz), EnergySetting::e1());
    let mut policy = EdfPolicy::max_speed().without_abort();
    let config = SimConfig::new(TimeDelta::from_micros(horizon_us));
    let out = Engine::run(tasks, patterns, &platform, &mut policy, &config, 0x5EED)
        .expect("fault-free simulation runs");
    let assured: u64 = out.metrics.per_task.iter().map(|t| t.assured).sum();
    let observable: u64 = out.metrics.per_task.iter().map(|t| t.observable).sum();
    (assured, observable, out.metrics.meets_assurances(tasks))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(soundness_cases()))]

    /// The gate itself: every per-frequency verdict of a random scenario,
    /// checked against the engine through `eua-sim`'s pool.
    #[test]
    fn verdicts_are_sound_against_the_simulator((case, freqs) in case_strategy()) {
        let spec = scenario_from(&case, &freqs);
        let ir = lower(&spec).expect("generated scenarios lower");
        let verdicts = frequency_verdicts(&ir);
        prop_assert_eq!(verdicts.len(), freqs.len());
        prop_assert_eq!(
            verdict_at_fmax(&verdicts).expect("non-empty").f_mhz,
            *freqs.last().expect("non-empty table")
        );
        // Verdicts are monotone in frequency: more speed never hurts.
        for pair in verdicts.windows(2) {
            prop_assert!(pair[1].verdict >= pair[0].verdict, "{pair:?}");
        }

        let (tasks, patterns) = simulator_workload(&spec);
        let max_window = case.iter().map(|t| t.window_us).max().unwrap();
        let max_term = case.iter().map(CaseTask::termination_us).max().unwrap();

        // Arithmetic half of the Infeasible claim: the witness window
        // overloads under eua-core's independent demand-bound path.
        let mut sims: Vec<(u64, bool, u64)> = Vec::new();
        for v in &verdicts {
            match v.verdict {
                Verdict::Feasible => {
                    prop_assert!(v.witness.is_none());
                    sims.push((v.f_mhz, true, 20 * max_window + max_term));
                }
                Verdict::Infeasible => {
                    let w = v.witness.expect("infeasible carries a witness");
                    let h = demand_bound(&tasks, w.interval_us);
                    prop_assert!((h - w.demand_cycles).abs() <= 1e-6 * h.max(1.0),
                        "witness demand {} disagrees with eua-core h(L) = {h}", w.demand_cycles);
                    #[allow(clippy::cast_precision_loss)]
                    let capacity = v.f_mhz as f64 * w.interval_us as f64;
                    prop_assert!(h > capacity + 1e-9,
                        "witness at {} MHz does not overload: h({}) = {h} vs {capacity}",
                        v.f_mhz, w.interval_us);
                    if w.interval_us <= MAX_SIMULATED_WITNESS_US {
                        sims.push((v.f_mhz, false, w.interval_us + max_term + max_window));
                    }
                }
                Verdict::Indeterminate => prop_assert!(v.witness.is_none()),
            }
        }

        // Simulation half, dispatched through the worker pool.
        let outcomes = map_parallel(2, sims, |_i, (mhz, feasible, horizon_us)| {
            let (assured, observable, meets) =
                simulate_fixed(&tasks, &patterns, mhz, horizon_us);
            (mhz, feasible, assured, observable, meets)
        })
        .expect("pool drains");
        for (mhz, feasible, assured, observable, meets) in outcomes {
            prop_assert!(observable > 0, "{mhz} MHz: horizon left nothing observable");
            if feasible {
                prop_assert_eq!(
                    assured, observable,
                    "statically Feasible at {} MHz, but {}/{} jobs assured",
                    mhz, assured, observable
                );
                prop_assert!(meets, "{mhz} MHz: {{ν, ρ}} assurances missed");
            } else {
                prop_assert!(
                    assured < observable,
                    "statically Infeasible at {} MHz, yet all {} jobs assured",
                    mhz, observable
                );
            }
        }
    }
}

/// The quantization gap behind `Indeterminate` is a real engine effect,
/// not analyzer pessimism: a system the continuous model accepts
/// (`986 ≤ 990` cycles per 99 µs at 10 MHz) still misses deadlines in
/// simulation because each job occupies whole microseconds
/// (`⌈981/10⌉ + ⌈5/10⌉ = 100 µs > 99 µs`). `Feasible` therefore cannot
/// be granted from the continuous model alone.
#[test]
fn indeterminate_gap_is_real_in_the_engine() {
    let tasks = vec![
        CaseTask {
            window_us: 99,
            arrivals: 1,
            cycles: 981,
            step: true,
            umax: 10.0,
            rho: 0.5,
        },
        CaseTask {
            window_us: 99,
            arrivals: 1,
            cycles: 5,
            step: true,
            umax: 1.0,
            rho: 0.5,
        },
    ];
    let spec = scenario_from(&tasks, &[10]);
    let ir = lower(&spec).expect("lowers");
    let verdicts = frequency_verdicts(&ir);
    assert_eq!(verdicts[0].verdict, Verdict::Indeterminate, "{verdicts:?}");

    let (task_set, patterns) = simulator_workload(&spec);
    let (assured, observable, _) = simulate_fixed(&task_set, &patterns, 10, 99 * 40);
    assert!(observable > 0);
    assert!(
        assured < observable,
        "the continuous model said this fits, and the engine agreed \
         ({assured}/{observable} assured) — the Indeterminate buffer would be dead code"
    );
}
