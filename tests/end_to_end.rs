#![allow(clippy::expect_used)] // test/demo code: panicking on bad setup is the point

//! Cross-crate integration: workload synthesis → simulation → metrics for
//! every registered policy, plus small-scale versions of the headline
//! Figure 2 shape claims.

use eua::core::make_policy;
use eua::platform::{EnergySetting, TimeDelta};
use eua::sim::{Engine, Metrics, Platform, SimConfig};
use eua::workload::{fig2_workload, fig3_workload};

fn run(policy: &str, load: f64, setting: EnergySetting, seed: u64) -> Metrics {
    let platform = Platform::powernow(setting);
    let w = fig2_workload(load, 42, platform.f_max()).expect("workload");
    let config = SimConfig::new(TimeDelta::from_secs(5));
    let mut p = make_policy(policy).expect("known policy");
    Engine::run(&w.tasks, &w.patterns, &platform, &mut p, &config, seed)
        .expect("simulation")
        .metrics
}

#[test]
fn every_policy_runs_the_paper_workload() {
    let platform = Platform::powernow(EnergySetting::e1());
    let w = fig2_workload(0.6, 42, platform.f_max()).expect("workload");
    let config = SimConfig::new(TimeDelta::from_secs(3));
    for name in eua::core::available_policies() {
        let mut p = make_policy(name).expect("registry");
        let m = Engine::run(&w.tasks, &w.patterns, &platform, &mut p, &config, 1)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .metrics;
        assert!(m.jobs_arrived() > 0, "{name}: no arrivals");
        assert!(m.total_utility > 0.0, "{name}: no utility accrued");
        assert!(m.energy > 0.0, "{name}: no energy accounted");
    }
}

#[test]
fn dvs_saves_energy_at_low_load() {
    // Figure 2(b): at load 0.2, EUA* uses a small fraction of the
    // always-f_m baseline's energy under the CPU-only model.
    let eua = run("eua", 0.2, EnergySetting::e1(), 5);
    let edf = run("edf", 0.2, EnergySetting::e1(), 5);
    assert!(
        eua.energy < 0.35 * edf.energy,
        "expected a large saving: {} vs {}",
        eua.energy,
        edf.energy
    );
}

#[test]
fn all_schemes_tie_on_utility_underload() {
    // Figure 2(a): during under-loads all schemes accrue the same
    // (optimal) utility.
    let base = run("edf", 0.6, EnergySetting::e1(), 5);
    for name in ["eua", "ccedf", "laedf", "edf-na"] {
        let m = run(name, 0.6, EnergySetting::e1(), 5);
        let ratio = m.total_utility / base.total_utility;
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "{name}: utility ratio {ratio} strays from 1 under-load"
        );
    }
}

#[test]
fn energy_converges_to_baseline_during_overload() {
    // Figure 2(b)/(d): during overloads, abort-capable schemes all run at
    // f_m, so normalized energy converges to 1.
    let base = run("edf", 1.6, EnergySetting::e1(), 5);
    for name in ["eua", "ccedf", "laedf"] {
        let m = run(name, 1.6, EnergySetting::e1(), 5);
        let ratio = m.energy / base.energy;
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "{name}: normalized energy {ratio} did not converge during overload"
        );
    }
}

#[test]
fn non_aborting_edf_collapses_during_overload() {
    // Figure 2(a)/(c): the domino effect.
    let edf = run("edf", 1.8, EnergySetting::e1(), 5);
    let na = run("edf-na", 1.8, EnergySetting::e1(), 5);
    assert!(
        na.total_utility < 0.75 * edf.total_utility,
        "edf-na should collapse: {} vs {}",
        na.total_utility,
        edf.total_utility
    );
}

#[test]
fn eua_beats_deadline_schedulers_during_overload() {
    // Figure 2(a)/(c): EUA* accrues more utility than the deadline-based
    // schemes once the system is overloaded.
    for load in [1.4, 1.8] {
        let eua = run("eua", load, EnergySetting::e1(), 5);
        let edf = run("edf", load, EnergySetting::e1(), 5);
        assert!(
            eua.total_utility >= edf.total_utility,
            "load {load}: eua {} < edf {}",
            eua.total_utility,
            edf.total_utility
        );
    }
}

#[test]
fn uer_clamp_helps_under_static_heavy_energy_model() {
    // Figure 2(d) mechanism: under E3 the clamp avoids below-knee
    // frequencies.
    let clamped = run("eua", 0.3, EnergySetting::e3(), 5);
    let unclamped = run("eua-noclamp", 0.3, EnergySetting::e3(), 5);
    assert!(
        clamped.energy <= unclamped.energy * 1.001,
        "clamp must not cost energy under E3: {} vs {}",
        clamped.energy,
        unclamped.energy
    );
}

#[test]
fn fig3_energy_rises_with_arrival_bound_underload() {
    // Figure 3: same load, larger a ⇒ more energy (worse slack
    // prediction). Averaged over seeds to tame Poisson noise.
    let platform = Platform::powernow(EnergySetting::e1());
    let config = SimConfig::new(TimeDelta::from_secs(5));
    let mut normalized = Vec::new();
    for a in [1u32, 3] {
        let w = fig3_workload(0.6, a, 42, platform.f_max()).expect("workload");
        let mut ratio_sum = 0.0;
        for seed in [1, 2, 3] {
            let mut dvs = make_policy("eua").expect("known");
            let mut nodvs = make_policy("eua-nodvs").expect("known");
            let e_dvs = Engine::run(&w.tasks, &w.patterns, &platform, &mut dvs, &config, seed)
                .expect("run")
                .metrics
                .energy;
            let e_nodvs = Engine::run(&w.tasks, &w.patterns, &platform, &mut nodvs, &config, seed)
                .expect("run")
                .metrics
                .energy;
            ratio_sum += e_dvs / e_nodvs;
        }
        normalized.push(ratio_sum / 3.0);
    }
    assert!(
        normalized[1] > normalized[0],
        "a=3 should cost more energy than a=1 at equal load: {normalized:?}"
    );
}

#[cfg(feature = "invariant-checks")]
#[test]
fn invariant_checks_are_compiled_in_and_survive_a_full_sweep() {
    // With the feature on, every `run()` above already threads each
    // engine transition through the invariant checker; this test makes
    // the wiring explicit and sweeps the checker across an overload,
    // where aborts and clock churn are most frequent.
    assert!(eua::sim::invariant_checks_enabled());
    for load in [0.3, 1.2] {
        for name in eua::core::available_policies() {
            let m = run(name, load, EnergySetting::e3(), 11);
            assert!(m.energy >= 0.0, "{name}: negative energy at load {load}");
        }
    }
}
