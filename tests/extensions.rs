//! Integration tests for the implemented future-work extensions:
//! energy-budgeted scheduling, progress-based accrual, and the offline
//! schedulability analysis — all exercised through the umbrella crate.

use eua::core::{brh_schedulable, sufficient_speed, BudgetedEua, Eua};
use eua::platform::{EnergySetting, Frequency, FrequencyTable, TimeDelta};
use eua::sim::{Engine, Platform, SimConfig};
use eua::workload::{fig2_workload, fig3_workload};

#[test]
fn budgeted_eua_never_overdraws_materially() {
    let platform = Platform::powernow(EnergySetting::e1());
    let w = fig2_workload(0.8, 42, platform.f_max()).expect("workload");
    let config = SimConfig::new(TimeDelta::from_secs(5));
    let full = Engine::run(
        &w.tasks,
        &w.patterns,
        &platform,
        &mut Eua::new(),
        &config,
        3,
    )
    .expect("run")
    .metrics;
    for frac in [0.2, 0.5, 0.9] {
        let budget = full.energy * frac;
        let m = Engine::run(
            &w.tasks,
            &w.patterns,
            &platform,
            &mut BudgetedEua::new(budget),
            &config,
            3,
        )
        .expect("run")
        .metrics;
        // Tolerance: one job allocation at f_m (believed-demand slack).
        let max_alloc = w
            .tasks
            .iter()
            .map(|(_, t)| {
                platform
                    .energy()
                    .energy_for(t.allocation(), platform.f_max())
            })
            .fold(0.0f64, f64::max);
        assert!(
            m.energy <= budget + max_alloc,
            "frac {frac}: spent {} of {budget}",
            m.energy
        );
    }
}

#[test]
fn budgeted_eua_prefers_high_uer_work_when_rationed() {
    // Under a tight budget the per-completed-job utility should be at
    // least as high as the unconstrained average: the policy skims the
    // best work.
    let platform = Platform::powernow(EnergySetting::e1());
    let w = fig2_workload(0.8, 42, platform.f_max()).expect("workload");
    let config = SimConfig::new(TimeDelta::from_secs(5));
    let full = Engine::run(
        &w.tasks,
        &w.patterns,
        &platform,
        &mut Eua::new(),
        &config,
        3,
    )
    .expect("run")
    .metrics;
    let tight = Engine::run(
        &w.tasks,
        &w.patterns,
        &platform,
        &mut BudgetedEua::new(full.energy * 0.2),
        &config,
        3,
    )
    .expect("run")
    .metrics;
    let full_per_job = full.total_utility / full.jobs_completed() as f64;
    let tight_per_job = tight.total_utility / tight.jobs_completed().max(1) as f64;
    assert!(
        tight_per_job >= 0.9 * full_per_job,
        "rationed per-job utility {tight_per_job} collapsed vs {full_per_job}"
    );
}

#[test]
fn progress_accrual_only_adds_utility() {
    let platform = Platform::powernow(EnergySetting::e1());
    let w = fig2_workload(1.5, 42, platform.f_max()).expect("workload");
    let plain_cfg = SimConfig::new(TimeDelta::from_secs(5));
    let partial_cfg = SimConfig::new(TimeDelta::from_secs(5)).with_progress_accrual();
    // Use the non-aborting EDF, which executes doomed jobs partially —
    // progress accrual is exactly the model where that work still counts.
    let mut na = eua::core::EdfPolicy::max_speed().without_abort();
    let plain = Engine::run(&w.tasks, &w.patterns, &platform, &mut na, &plain_cfg, 3)
        .expect("run")
        .metrics;
    let mut na2 = eua::core::EdfPolicy::max_speed().without_abort();
    let partial = Engine::run(&w.tasks, &w.patterns, &platform, &mut na2, &partial_cfg, 3)
        .expect("run")
        .metrics;
    assert!(
        partial.total_utility > plain.total_utility,
        "progress accrual must recover utility from partially executed jobs: \
         {} vs {}",
        partial.total_utility,
        plain.total_utility
    );
    assert!(partial.total_utility <= partial.max_possible_utility + 1e-6);
}

#[test]
fn analysis_agrees_with_simulation_on_the_paper_workload() {
    let f_max = Frequency::from_mhz(100);
    // Under-load: schedulable at f_m, and the simulator confirms.
    let under = fig2_workload(0.8, 42, f_max).expect("workload");
    assert!(brh_schedulable(&under.tasks, f_max));
    // Overload: even f_m is insufficient.
    let over = fig2_workload(1.4, 42, f_max).expect("workload");
    assert!(!brh_schedulable(&over.tasks, f_max));
    // Theorem 1's sufficient speed matches the load definition:
    // speed = load · f_m.
    let speed = sufficient_speed(&under.tasks);
    assert!((speed - 0.8 * 100.0).abs() < 1.0, "speed {speed}");
}

#[test]
fn theorem1_fixed_speed_platform_meets_all_critical_times() {
    let f_max = Frequency::from_mhz(100);
    let w = fig3_workload(0.6, 2, 42, f_max).expect("workload");
    let speed = sufficient_speed(&w.tasks).ceil() as u64;
    let platform = Platform::new(FrequencyTable::fixed(speed), EnergySetting::e1());
    let config = SimConfig::new(TimeDelta::from_secs(8));
    let out = Engine::run(
        &w.tasks,
        &w.patterns,
        &platform,
        &mut eua::core::EdfPolicy::max_speed(),
        &config,
        3,
    )
    .expect("run");
    for tm in &out.metrics.per_task {
        assert_eq!(
            tm.completed, tm.critical_met,
            "critical time missed at Theorem 1 speed"
        );
        assert_eq!(tm.aborted_by_termination + tm.aborted_by_policy, 0);
    }
}

#[test]
fn frequency_residency_reflects_dvs_behavior() {
    let platform = Platform::powernow(EnergySetting::e1());
    let w = fig2_workload(0.3, 42, platform.f_max()).expect("workload");
    let config = SimConfig::new(TimeDelta::from_secs(5));
    let eua = Engine::run(
        &w.tasks,
        &w.patterns,
        &platform,
        &mut Eua::new(),
        &config,
        3,
    )
    .expect("run")
    .metrics;
    let edf = Engine::run(
        &w.tasks,
        &w.patterns,
        &platform,
        &mut eua::core::EdfPolicy::max_speed(),
        &config,
        3,
    )
    .expect("run")
    .metrics;
    // EDF always runs flat out; EUA* mostly below it at load 0.3.
    assert_eq!(edf.mean_frequency_mhz(), Some(100.0));
    let eua_mean = eua.mean_frequency_mhz().expect("eua executed");
    assert!(eua_mean < 70.0, "expected deep scaling, got {eua_mean} MHz");
    // Residency accounts for every busy microsecond.
    let total: TimeDelta = eua.freq_residency.iter().map(|r| r.busy).sum();
    assert_eq!(total, eua.busy_time);
}
