#![allow(clippy::expect_used, clippy::unwrap_used)] // test code: panicking on bad setup is the point

//! No-panic fuzz suite for the fault-injection layer: however
//! adversarial the [`FaultPlan`] — huge demand factors, `u64`-boundary
//! switch latencies, jitter far beyond the declared windows, plans the
//! validator must reject — the engine returns `Ok` or a typed
//! [`SimError`], never panics, and stays deterministic per seed.
//!
//! The case count defaults to 48 and can be overridden through the
//! `EUA_FUZZ_CASES` environment variable (ci.sh runs a reduced budget).
//! The whole suite is exercised with and without the
//! `invariant-checks` feature by ci.sh.

use eua::core::make_policy;
use eua::platform::TimeDelta;
use eua::sim::{Engine, FaultPlan, Platform, SimConfig, Task, TaskSet};
use eua::tuf::Tuf;
use eua::uam::demand::DemandModel;
use eua::uam::generator::ArrivalPattern;
use eua::uam::{Assurance, UamSpec};
use proptest::prelude::*;

fn fuzz_cases() -> u32 {
    std::env::var("EUA_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

fn ms(v: u64) -> TimeDelta {
    TimeDelta::from_millis(v)
}

/// A small two-task workload: one step TUF, one linear, 10 ms windows.
fn workload() -> (TaskSet, Vec<ArrivalPattern>) {
    let p = ms(10);
    let a = Task::new(
        "step",
        Tuf::step(10.0, p).unwrap(),
        UamSpec::new(2, p).unwrap(),
        DemandModel::normal(120_000.0, 60_000.0).unwrap(),
        Assurance::new(1.0, 0.9).unwrap(),
    )
    .unwrap();
    let b = Task::new(
        "linear",
        Tuf::linear(8.0, p).unwrap(),
        UamSpec::periodic(p).unwrap(),
        DemandModel::deterministic(90_000.0).unwrap(),
        Assurance::new(0.5, 0.8).unwrap(),
    )
    .unwrap();
    let tasks = TaskSet::new(vec![a, b]).unwrap();
    let patterns = vec![
        ArrivalPattern::window_burst(UamSpec::new(2, p).unwrap()).unwrap(),
        ArrivalPattern::periodic(p).unwrap(),
    ];
    (tasks, patterns)
}

/// Every fault knob an adversarial case may turn, including values the
/// validator must reject (negative factors, empty degraded sets) and
/// values legal-but-extreme (u64-boundary latency, jitter ≫ window).
#[derive(Debug, Clone)]
struct PlanParams {
    extra: u32,
    stride: u32,
    mean_factor: f64,
    spread: f64,
    latency: u64,
    stuck_us: Option<u64>,
    degraded: Option<Vec<u64>>,
    abort_us: u64,
    jitter_us: u64,
}

fn arb_plan() -> impl Strategy<Value = PlanParams> {
    let latency = prop_oneof![
        Just(0u64),
        1u64..50_000,
        Just(u64::MAX), // boundary: must saturate, not overflow
    ];
    let degraded = prop_oneof![
        Just(None),
        Just(Some(vec![])),    // validator must reject
        Just(Some(vec![999])), // disjoint from the table: reject
        Just(Some(vec![36])),  // slowest only
        Just(Some(vec![36, 64, 100])),
    ];
    (
        (0u32..6, 0u32..4),
        (-2.0f64..30.0, -1.0f64..10.0),
        latency,
        prop_oneof![Just(None), (0u64..100_000).prop_map(Some)],
        degraded,
        (0u64..50_000, 0u64..200_000), // abort cost / jitter up to 20 windows
    )
        .prop_map(
            |(
                (extra, stride),
                (mean_factor, spread),
                latency,
                stuck_us,
                degraded,
                (abort_us, jitter_us),
            )| {
                PlanParams {
                    extra,
                    stride,
                    mean_factor,
                    spread,
                    latency,
                    stuck_us,
                    degraded,
                    abort_us,
                    jitter_us,
                }
            },
        )
}

fn plan_from(params: &PlanParams) -> FaultPlan {
    let mut plan = FaultPlan::none();
    plan.uam.extra_per_window = params.extra;
    plan.uam.every_n_windows = params.stride;
    plan.demand.mean_factor = params.mean_factor;
    plan.demand.spread = params.spread;
    plan.dvs.switch_latency_cycles = params.latency;
    plan.dvs.stuck_after = params.stuck_us.map(TimeDelta::from_micros);
    plan.dvs.degraded_mhz = params.degraded.clone();
    plan.timing.abort_cost = TimeDelta::from_micros(params.abort_us);
    plan.timing.arrival_jitter = TimeDelta::from_micros(params.jitter_us);
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    #[test]
    fn adversarial_plans_never_panic_and_stay_deterministic(
        params in arb_plan(),
        seed in 0u64..1_000,
        policy_pick in 0usize..3,
    ) {
        let (tasks, patterns) = workload();
        let platform = Platform::powernow(eua::platform::EnergySetting::e1());
        let config = SimConfig::new(ms(100));
        let plan = plan_from(&params);
        let name = ["eua", "dasa", "edf"][policy_pick];

        let mut policy = make_policy(name).expect("registry policy");
        let first = Engine::run_with_faults(
            &tasks, &patterns, &platform, &mut policy, &config, seed, &plan,
        );
        // Invalid plans must surface as the typed error, not a panic.
        if plan.validate().is_err() {
            prop_assert!(first.is_err(), "invalid plan must be rejected: {params:?}");
        }
        match first {
            Err(_) => {} // typed error: acceptable for adversarial input
            Ok(outcome) => {
                let mut policy = make_policy(name).expect("registry policy");
                let again = Engine::run_with_faults(
                    &tasks, &patterns, &platform, &mut policy, &config, seed, &plan,
                )
                .expect("a plan that ran once must run again");
                prop_assert_eq!(
                    &again.metrics, &outcome.metrics,
                    "faulted runs must be deterministic per seed"
                );
            }
        }
    }
}

#[test]
fn all_jobs_abort_plan_runs_clean() {
    // Demand ×1000 turns every job into an allocation overrun that runs
    // to its termination time; with a per-abort cost on top, the engine
    // must still terminate cleanly and account every job.
    let (tasks, patterns) = workload();
    let platform = Platform::powernow(eua::platform::EnergySetting::e1());
    let config = SimConfig::new(ms(200));
    let mut plan = FaultPlan::none();
    plan.demand.mean_factor = 1000.0;
    plan.timing.abort_cost = TimeDelta::from_micros(300);
    let mut policy = make_policy("eua").unwrap();
    let out = Engine::run_with_faults(&tasks, &patterns, &platform, &mut policy, &config, 7, &plan)
        .expect("all-abort run must stay clean");
    assert!(
        out.metrics.jobs_aborted() > 0,
        "demand x1000 must abort jobs"
    );
    assert_eq!(
        out.metrics.jobs_arrived(),
        out.metrics.jobs_completed() + out.metrics.jobs_aborted(),
        "every arrived job must be accounted for"
    );
}

#[test]
fn u64_boundary_switch_latency_saturates() {
    // A relock latency of u64::MAX cycles must saturate the clock (run
    // ends at the horizon) rather than overflow anywhere.
    let (tasks, patterns) = workload();
    let platform = Platform::powernow(eua::platform::EnergySetting::e1());
    let config = SimConfig::new(ms(100));
    let mut plan = FaultPlan::none();
    plan.dvs.switch_latency_cycles = u64::MAX;
    let mut policy = make_policy("eua").unwrap();
    let out = Engine::run_with_faults(&tasks, &patterns, &platform, &mut policy, &config, 3, &plan)
        .expect("boundary latency must not panic");
    assert!(out.metrics.jobs_arrived() > 0);
}

#[test]
fn zero_intensity_plans_are_bit_identical_across_policies() {
    // Regression pin for the whole layer: an all-zero FaultPlan must
    // leave every policy's run bit-identical to the unfaulted engine.
    let (tasks, patterns) = workload();
    let platform = Platform::powernow(eua::platform::EnergySetting::e1());
    let config = SimConfig::new(ms(500));
    for name in ["eua", "dasa", "edf"] {
        let mut policy = make_policy(name).expect("registry policy");
        let plain = Engine::run(&tasks, &patterns, &platform, &mut policy, &config, 42)
            .expect("unfaulted run");
        let mut policy = make_policy(name).expect("registry policy");
        let faulted = Engine::run_with_faults(
            &tasks,
            &patterns,
            &platform,
            &mut policy,
            &config,
            42,
            &FaultPlan::none(),
        )
        .expect("zero-fault run");
        assert_eq!(plain, faulted, "policy {name}: zero faults must be free");
    }
}
