#![allow(clippy::expect_used)] // test/demo code: panicking on bad setup is the point

//! Cross-crate check of the parallel sweep runner: `replicate_parallel`
//! must be **bit-identical** to sequential `replicate` — same metrics,
//! same seed order — on a real paper workload, for any worker count, and
//! the bench-layer parallel cell map must agree with its sequential self.

use eua::core::Eua;
use eua::platform::{EnergySetting, TimeDelta};
use eua::sim::{replicate, replicate_parallel, Platform, SimConfig};
use eua::workload::{fig2_workload, fig3_workload};

const SEEDS: [u64; 6] = [17, 2, 9, 41, 3, 28];

#[test]
fn parallel_replicate_is_bit_identical_on_fig2_workload() {
    let platform = Platform::powernow(EnergySetting::e1());
    let w = fig2_workload(0.8, 42, platform.f_max()).expect("workload");
    let config = SimConfig::new(TimeDelta::from_secs(2));

    let mut policy = Eua::new();
    let sequential = replicate(
        &w.tasks,
        &w.patterns,
        &platform,
        &mut policy,
        &config,
        &SEEDS,
    )
    .expect("sequential run");

    for jobs in [1, 2, 3, 8] {
        let parallel = replicate_parallel(
            &w.tasks,
            &w.patterns,
            &platform,
            Eua::new,
            &config,
            &SEEDS,
            jobs,
        )
        .expect("parallel run");
        assert_eq!(
            parallel.runs.len(),
            sequential.runs.len(),
            "jobs={jobs}: run count"
        );
        for (p, s) in parallel.runs.iter().zip(&sequential.runs) {
            assert_eq!(p.seed, s.seed, "jobs={jobs}: seed order must match");
            assert_eq!(
                p.metrics, s.metrics,
                "jobs={jobs} seed={}: metrics must be bit-identical",
                p.seed
            );
        }
    }
}

#[test]
fn parallel_replicate_is_bit_identical_on_bursty_workload() {
    // ⟨3, P⟩ random-burst arrivals exercise the stochastic generator paths.
    let platform = Platform::powernow(EnergySetting::e3());
    let w = fig3_workload(1.2, 3, 42, platform.f_max()).expect("workload");
    let config = SimConfig::new(TimeDelta::from_secs(1));

    let mut policy = Eua::new();
    let sequential = replicate(
        &w.tasks,
        &w.patterns,
        &platform,
        &mut policy,
        &config,
        &SEEDS,
    )
    .expect("sequential run");
    let parallel = replicate_parallel(
        &w.tasks,
        &w.patterns,
        &platform,
        Eua::new,
        &config,
        &SEEDS,
        4,
    )
    .expect("parallel run");
    assert_eq!(parallel.runs.len(), sequential.runs.len());
    for (p, s) in parallel.runs.iter().zip(&sequential.runs) {
        assert_eq!(p.seed, s.seed);
        assert_eq!(p.metrics, s.metrics);
    }
}
