//! Replays the shrunk chaos repros checked into
//! `tests/regression_corpus/` (tier-1, see ROADMAP).
//!
//! Each `.scn` in the corpus is a 1-minimal failing cell harvested by
//! `eua-chaos --shrink-dir` (see `eua_bench::shrink`): its scenario
//! name carries `policy=… seed=… horizon_us=… expect=…` metadata, and
//! replaying it — graded by `classify_degradation` and audited against
//! its decision certificate — must still exhibit exactly the recorded
//! failure. A behaviour change that silently "fixes" (or worsens) a
//! repro fails here and forces a deliberate corpus update.

#![allow(missing_docs)]
#![allow(clippy::expect_used, clippy::unwrap_used)] // test code: panicking on bad setup is the point

use std::fs;
use std::path::PathBuf;

use eua_bench::shrink::{candidates, case_from_repro_text, probe};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/regression_corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("tests/regression_corpus/ must exist")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "scn"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_not_empty() {
    assert!(
        !corpus_files().is_empty(),
        "the regression corpus must hold at least one shrunk repro"
    );
}

#[test]
fn every_corpus_repro_still_reproduces_its_failure() {
    for path in corpus_files() {
        let text = fs::read_to_string(&path).expect("corpus file reads");
        let (case, expect) =
            case_from_repro_text(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let observed = probe(&case);
        assert_eq!(
            observed,
            Some(expect),
            "{}: expected {:?}, observed {observed:?}",
            path.display(),
            expect
        );
    }
}

#[test]
fn corpus_repros_are_canonical_and_minimal() {
    for path in corpus_files() {
        let text = fs::read_to_string(&path).expect("corpus file reads");
        // Committed repro text must be a parse ∘ render fixpoint, so
        // `eua-analyze --fix`-style rewrites can never drift it.
        let spec = eua_analyze::scenario::ScenarioSpec::parse(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(spec.render(), text, "{}: not canonical", path.display());
        // And 1-minimal: removing any single element (a task, a fault
        // component, half the horizon) must stop it reproducing.
        let (case, _) = case_from_repro_text(&text).expect("parses");
        for candidate in candidates(&case) {
            assert_eq!(
                probe(&candidate),
                None,
                "{}: a smaller candidate still reproduces — re-shrink it",
                path.display()
            );
        }
    }
}
