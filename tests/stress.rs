//! Failure-injection and behavioural-fingerprint tests: heavy-tailed
//! demand overruns, UAM-bound bursts, degenerate frequency tables, and
//! the EDF-order audit distinguishing deadline from utility-accrual
//! scheduling.

use eua::core::{EdfPolicy, Eua};
use eua::platform::{EnergySetting, FrequencyTable, TimeDelta};
use eua::sim::{edf_violations, Engine, Platform, SimConfig, Task, TaskSet};
use eua::tuf::Tuf;
use eua::uam::demand::DemandModel;
use eua::uam::generator::ArrivalPattern;
use eua::uam::{Assurance, UamSpec};

fn ms(v: u64) -> TimeDelta {
    TimeDelta::from_millis(v)
}

#[test]
fn cantelli_assurance_survives_heavy_tailed_demands() {
    // The Chebyshev/Cantelli allocation is distribution-free: even with
    // Pareto demands (10%+ allocation overruns), an under-loaded EUA* run
    // must still deliver the {ν, ρ} assurance.
    let p = ms(20);
    let task = Task::new(
        "heavy",
        Tuf::step(10.0, p).unwrap(),
        UamSpec::periodic(p).unwrap(),
        DemandModel::pareto(150_000.0, 2.5).unwrap(),
        Assurance::new(1.0, 0.9).unwrap(),
    )
    .unwrap();
    let tasks = TaskSet::new(vec![task]).unwrap();
    let patterns = vec![ArrivalPattern::periodic(p).unwrap()];
    let platform = Platform::powernow(EnergySetting::e1());
    let config = SimConfig::new(TimeDelta::from_secs(20));
    let out = Engine::run(&tasks, &patterns, &platform, &mut Eua::new(), &config, 11).expect("run");
    let tm = &out.metrics.per_task[0];
    let rate = tm.assurance_rate().expect("observable jobs");
    assert!(rate >= 0.9, "assurance {rate} below rho despite under-load");
    // But the heavy tail must actually have bitten somewhere: some jobs
    // should overrun the allocation (visible as executed > allocation
    // not being trackable here, so check that not *every* job was
    // assured — tail events exist at this alpha — or all completed).
    assert!(
        tm.completed > 900,
        "expected ~1000 jobs, got {}",
        tm.completed
    );
}

#[test]
fn degenerate_single_frequency_platform_works() {
    // A platform with one frequency reduces every DVS policy to fixed
    // speed; everything must still run and agree on utility.
    let platform = Platform::new(FrequencyTable::fixed(100), EnergySetting::e1());
    let p = ms(10);
    let task = Task::new(
        "t",
        Tuf::step(5.0, p).unwrap(),
        UamSpec::new(2, p).unwrap(),
        DemandModel::normal(150_000.0, 150_000.0).unwrap(),
        Assurance::new(1.0, 0.9).unwrap(),
    )
    .unwrap();
    let tasks = TaskSet::new(vec![task]).unwrap();
    let spec = UamSpec::new(2, p).unwrap();
    let patterns = vec![ArrivalPattern::window_burst(spec).unwrap()];
    let config = SimConfig::new(TimeDelta::from_secs(2));
    let mut results = Vec::new();
    for name in ["eua", "laedf", "ccedf", "edf"] {
        let mut policy = eua::core::make_policy(name).expect("known");
        let m = Engine::run(&tasks, &patterns, &platform, &mut policy, &config, 2)
            .expect("run")
            .metrics;
        results.push((name, m.total_utility, m.energy));
    }
    for w in results.windows(2) {
        assert!(
            (w[0].1 - w[1].1).abs() < 1e-6,
            "utilities diverge on a single-speed platform: {results:?}"
        );
        assert!(
            (w[0].2 - w[1].2).abs() < 1e-6 * w[0].2.abs().max(1.0),
            "energies diverge on a single-speed platform: {results:?}"
        );
    }
}

#[test]
fn eua_inverts_edf_order_only_during_overload() {
    let platform = Platform::powernow(EnergySetting::e1());
    let config = SimConfig::new(TimeDelta::from_secs(5))
        .with_trace()
        .with_job_records();

    // Under-load: EUA* is critical-time ordered (Theorem 2) — no
    // inversions.
    let under = eua::workload::fig2_workload(0.6, 42, platform.f_max()).expect("workload");
    let out = Engine::run(
        &under.tasks,
        &under.patterns,
        &platform,
        &mut Eua::new(),
        &config,
        5,
    )
    .expect("run");
    let v = edf_violations(
        out.trace.as_ref().expect("trace"),
        out.jobs.as_ref().expect("records"),
        &under.tasks,
    );
    assert!(
        v.is_empty(),
        "unexpected inversions under-load: {}",
        v.len()
    );

    // Overload: shedding low-UER jobs necessarily leaves earlier-critical
    // jobs live while more valuable later ones run.
    let over = eua::workload::fig2_workload(1.6, 42, platform.f_max()).expect("workload");
    let out = Engine::run(
        &over.tasks,
        &over.patterns,
        &platform,
        &mut Eua::new(),
        &config,
        5,
    )
    .expect("run");
    let v = edf_violations(
        out.trace.as_ref().expect("trace"),
        out.jobs.as_ref().expect("records"),
        &over.tasks,
    );
    assert!(
        !v.is_empty(),
        "EUA* should invert EDF order during overload"
    );

    // The deadline baseline stays EDF-ordered even overloaded (it only
    // drops infeasible jobs, which stop being live immediately).
    let out = Engine::run(
        &over.tasks,
        &over.patterns,
        &platform,
        &mut EdfPolicy::max_speed(),
        &config,
        5,
    )
    .expect("run");
    let v = edf_violations(
        out.trace.as_ref().expect("trace"),
        out.jobs.as_ref().expect("records"),
        &over.tasks,
    );
    assert!(v.is_empty(), "EDF produced inversions: {}", v.len());
}

#[test]
fn maximal_uam_bursts_at_every_window_are_survivable() {
    // The strongest legal adversary: a tasks × a jobs all at once, sized
    // to land exactly at load 1.0.
    let p = ms(10);
    let spec = UamSpec::new(5, p).unwrap();
    let task = Task::new(
        "burst",
        Tuf::step(5.0, p).unwrap(),
        spec,
        DemandModel::deterministic(200_000.0).unwrap(), // 5×200k = 1M per 10 ms
        Assurance::new(1.0, 0.5).unwrap(),
    )
    .unwrap();
    let tasks = TaskSet::new(vec![task]).unwrap();
    let patterns = vec![ArrivalPattern::window_burst(spec).unwrap()];
    let platform = Platform::powernow(EnergySetting::e1());
    let config = SimConfig::new(TimeDelta::from_secs(2));
    let out = Engine::run(&tasks, &patterns, &platform, &mut Eua::new(), &config, 7).expect("run");
    // Exactly at capacity: every job completes (1M cycles / 10 ms at
    // 100 MHz), none abort.
    assert_eq!(out.metrics.jobs_completed(), out.metrics.jobs_arrived());
    assert_eq!(out.metrics.jobs_aborted(), 0);
}

#[test]
fn overloaded_run_with_progress_accrual_and_idle_power_stays_consistent() {
    // Combine every engine extension at once and check the invariants
    // still hold.
    let platform = Platform::powernow(EnergySetting::e3());
    let w = eua::workload::fig2_workload(1.5, 42, platform.f_max()).expect("workload");
    let config = SimConfig::new(TimeDelta::from_secs(5))
        .with_progress_accrual()
        .with_idle_power(500.0)
        .with_context_switch_overhead(TimeDelta::from_micros(20))
        .with_frequency_switch_overhead(TimeDelta::from_micros(50))
        .with_trace()
        .with_job_records();
    let out = Engine::run(
        &w.tasks,
        &w.patterns,
        &platform,
        &mut Eua::new(),
        &config,
        9,
    )
    .expect("run");
    let m = &out.metrics;
    assert!(m.total_utility > 0.0);
    assert!(m.total_utility <= m.max_possible_utility + 1e-6);
    assert!(m.busy_time <= m.horizon);
    assert!(out.trace.expect("trace").is_serial());
}
