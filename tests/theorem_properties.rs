#![allow(clippy::expect_used)] // test/demo code: panicking on bad setup is the point

//! Integration checks of the paper's §4 timeliness properties
//! (Theorems 2–6) under the stated conditions: periodic arrivals, no CPU
//! overload.

use eua::core::{EdfPolicy, Eua};
use eua::platform::{EnergySetting, TimeDelta};
use eua::sim::{Engine, Outcome, Platform, SchedulerPolicy, SimConfig};
use eua::workload::{fig3_workload, theorem_workload, Workload};

fn run(w: &Workload, policy: &mut dyn SchedulerPolicy, seed: u64) -> Outcome {
    let platform = Platform::powernow(EnergySetting::e1());
    let config = SimConfig::new(TimeDelta::from_secs(8)).with_trace();
    Engine::run(&w.tasks, &w.patterns, &platform, policy, &config, seed).expect("simulation")
}

#[test]
fn theorem2_eua_matches_edf_schedule_at_fmax() {
    for load in [0.25, 0.55, 0.85] {
        let w =
            theorem_workload(load, 42, eua::platform::Frequency::from_mhz(100)).expect("workload");
        let edf = run(&w, &mut EdfPolicy::max_speed(), 3);
        let eua = run(&w, &mut Eua::without_dvs(), 3);
        assert_eq!(
            edf.trace.as_ref().unwrap().job_sequence(),
            eua.trace.as_ref().unwrap().job_sequence(),
            "load {load}: schedules diverge"
        );
        assert!(
            (edf.metrics.total_utility - eua.metrics.total_utility).abs() < 1e-6,
            "load {load}: utilities diverge"
        );
    }
}

#[test]
fn corollary3_eua_meets_all_critical_times_underload() {
    for load in [0.25, 0.55, 0.85] {
        let w =
            theorem_workload(load, 42, eua::platform::Frequency::from_mhz(100)).expect("workload");
        let out = run(&w, &mut Eua::new(), 3);
        for (i, tm) in out.metrics.per_task.iter().enumerate() {
            assert_eq!(
                tm.completed, tm.critical_met,
                "load {load}, task {i}: missed critical times"
            );
            assert_eq!(
                tm.aborted_by_policy + tm.aborted_by_termination,
                0,
                "load {load}, task {i}: aborted jobs under-load"
            );
        }
    }
}

#[test]
fn corollary4_eua_matches_edf_max_lateness() {
    let w = theorem_workload(0.7, 42, eua::platform::Frequency::from_mhz(100)).expect("workload");
    let edf = run(&w, &mut EdfPolicy::max_speed(), 3);
    let eua = run(&w, &mut Eua::without_dvs(), 3);
    assert_eq!(eua.metrics.max_lateness_us(), edf.metrics.max_lateness_us());
}

#[test]
fn theorem5_statistical_requirements_hold_underload() {
    for seed in [3, 17, 91] {
        let w =
            theorem_workload(0.8, 42, eua::platform::Frequency::from_mhz(100)).expect("workload");
        let out = run(&w, &mut Eua::new(), seed);
        assert!(
            out.metrics.meets_assurances(&w.tasks),
            "seed {seed}: nu-rho assurances violated under-load",
        );
    }
}

#[test]
fn theorem6_nonstep_tufs_meet_statistical_requirements() {
    // Linear TUFs, periodic arrivals, load < 1 — the BRH condition holds
    // for the scaled set, so the statistical requirements must be met.
    let w = fig3_workload(0.6, 1, 42, eua::platform::Frequency::from_mhz(100)).expect("workload");
    let out = run(&w, &mut Eua::new(), 3);
    assert!(out.metrics.meets_assurances(&w.tasks));
    // The miss rate is bounded by 1 − ρ = 0.1.
    let misses: u64 = out
        .metrics
        .per_task
        .iter()
        .map(|t| t.completed - t.critical_met + t.aborted_by_termination + t.aborted_by_policy)
        .sum();
    let arrived = out.metrics.jobs_arrived().max(1);
    assert!(
        (misses as f64) / (arrived as f64) <= 0.1,
        "{misses}/{arrived} critical-time misses"
    );
}
