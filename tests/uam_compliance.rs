//! Integration checks of the UAM contract across crates: synthesized
//! workloads generate compliant traces, and the scheduler/simulator stack
//! preserves the believed-vs-actual demand asymmetry.

use eua::platform::{EnergySetting, SimTime, TimeDelta};
use eua::sim::{Engine, Platform, SimConfig, Task, TaskSet};
use eua::tuf::Tuf;
use eua::uam::demand::DemandModel;
use eua::uam::generator::ArrivalPattern;
use eua::uam::{ArrivalTrace, Assurance, UamSpec};
use eua::workload::{fig3_workload, WorkloadBuilder};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn synthesized_patterns_comply_with_their_specs() {
    let w = fig3_workload(0.5, 3, 7, eua::platform::Frequency::from_mhz(100)).expect("workload");
    let mut rng = SmallRng::seed_from_u64(99);
    for ((_, task), pattern) in w.tasks.iter().zip(&w.patterns) {
        let trace = pattern.generate(TimeDelta::from_secs(30), &mut rng);
        assert!(
            trace.complies_with(task.uam()),
            "task {} pattern violates {}",
            task.name(),
            task.uam()
        );
    }
}

#[test]
fn engine_arrival_stream_respects_uam_in_job_records() {
    // Run a bursty workload with records on, reconstruct each task's
    // arrival trace from the records, and verify UAM compliance of what
    // the scheduler actually saw.
    let window = TimeDelta::from_millis(20);
    let spec = UamSpec::new(3, window).expect("valid");
    let task = Task::new(
        "bursty",
        Tuf::step(5.0, window).expect("valid"),
        spec,
        DemandModel::normal(100_000.0, 100_000.0).expect("valid"),
        Assurance::new(1.0, 0.9).expect("valid"),
    )
    .expect("valid");
    let tasks = TaskSet::new(vec![task]).expect("non-empty");
    let patterns = vec![ArrivalPattern::constrained_poisson(spec, 2.5).expect("valid")];
    let platform = Platform::powernow(EnergySetting::e1());
    let config = SimConfig::new(TimeDelta::from_secs(10)).with_job_records();
    let mut policy = eua::core::Eua::new();
    let out =
        Engine::run(&tasks, &patterns, &platform, &mut policy, &config, 5).expect("simulation");
    let records = out.jobs.expect("records enabled");
    let trace: ArrivalTrace = records.iter().map(|r| r.arrival).collect();
    assert!(!trace.is_empty());
    assert!(trace.complies_with(&spec));
}

#[test]
fn scheduler_only_sees_believed_demand() {
    // A task whose actual demand (deterministic 500k) exceeds its
    // allocation would reveal an information leak if the policy could see
    // it: EUA* would abort the job at release (infeasible). With the
    // believed (allocation-based) view it schedules the job optimistically.
    let window = TimeDelta::from_millis(10);
    let spec = UamSpec::periodic(window).expect("valid");
    // Believed allocation: ρ = 0 ⇒ c = mean = 900k... make believed small
    // by lying through the mean: mean 200k, but clamp variance 0 and use
    // uniform actuals via a wide distribution instead.
    let task = Task::new(
        "overrunner",
        Tuf::step(5.0, window).expect("valid"),
        spec,
        // Mean 600k, variance 0: allocation = 600k believed = actual.
        // At 100 MHz that is 6 ms < 10 ms: feasible, runs, completes.
        DemandModel::deterministic(600_000.0).expect("valid"),
        Assurance::new(1.0, 0.5).expect("valid"),
    )
    .expect("valid");
    let tasks = TaskSet::new(vec![task]).expect("non-empty");
    let patterns = vec![ArrivalPattern::periodic(window).expect("valid")];
    let platform = Platform::powernow(EnergySetting::e1());
    let config = SimConfig::new(TimeDelta::from_millis(100)).with_job_records();
    let mut policy = eua::core::Eua::new();
    let out =
        Engine::run(&tasks, &patterns, &platform, &mut policy, &config, 5).expect("simulation");
    assert_eq!(out.metrics.jobs_completed(), 10);
    for r in out.jobs.expect("records") {
        assert_eq!(r.executed, r.actual_demand);
    }
}

#[test]
fn workload_builder_burst_traces_hit_the_uam_bound_exactly() {
    let w = WorkloadBuilder::new(eua::workload::table1())
        .max_arrivals(4)
        .build(3)
        .expect("workload");
    let mut rng = SmallRng::seed_from_u64(1);
    for ((_, task), pattern) in w.tasks.iter().zip(&w.patterns) {
        let horizon = TimeDelta::from_micros(task.uam().window().as_micros() * 10);
        let trace = pattern.generate(horizon, &mut rng);
        // WindowBurst is the maximal adversary: it reaches the bound.
        assert_eq!(trace.peak_arrivals_in(task.uam().window()), 4);
        assert!(trace.complies_with(task.uam()));
    }
}

#[test]
fn first_arrival_happens_at_time_zero_for_periodic_patterns() {
    let pattern = ArrivalPattern::periodic(TimeDelta::from_millis(5)).expect("valid");
    let mut rng = SmallRng::seed_from_u64(0);
    let trace = pattern.generate(TimeDelta::from_millis(50), &mut rng);
    assert_eq!(trace.as_slice()[0], SimTime::ZERO);
}

#[cfg(feature = "invariant-checks")]
#[test]
fn invariant_checks_cover_bursty_admission() {
    // The checker's UAM-window assertion sees the exact arrival stream
    // the engine admits; a maximally bursty pattern (WindowBurst hits
    // the bound) is the sharpest exercise of that assertion.
    assert!(eua::sim::invariant_checks_enabled());
    let w = WorkloadBuilder::new(eua::workload::table1())
        .max_arrivals(4)
        .build(3)
        .expect("workload");
    let platform = Platform::powernow(EnergySetting::e1());
    let config = SimConfig::new(TimeDelta::from_secs(2));
    let mut policy = eua::core::Eua::new();
    Engine::run(&w.tasks, &w.patterns, &platform, &mut policy, &config, 3)
        .expect("simulation under invariant checks");
}
