//! Offline drop-in replacement for the subset of the `criterion` API this
//! workspace's benches use.
//!
//! The build environment has no crates.io access. This shim keeps the
//! `cargo bench` targets compiling and producing *indicative* wall-clock
//! numbers (median of a fixed number of timed iterations printed to
//! stdout) without statistical analysis, outlier detection, or HTML
//! reports. Treat the output as a smoke check, not a publication-quality
//! measurement.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// Times closures; handed to bench bodies.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    median_ns: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the median iteration time.
    ///
    /// Each sample times a *batch* of invocations sized so the batch runs
    /// for roughly 100 µs, then divides by the batch size. Timing single
    /// sub-microsecond invocations would mostly measure clock quantization
    /// and syscall overhead, not the routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and calibrate the batch size on one timed invocation.
        let start = Instant::now();
        black_box(routine());
        let once_ns = start.elapsed().as_nanos().max(1) as u64;
        const TARGET_BATCH_NS: u64 = 1_000_000;
        let batch = (TARGET_BATCH_NS / once_ns).clamp(1, 1_000_000);
        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                start.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut b, input);
        println!(
            "{}/{}: median {:.1} ns/iter",
            self.name, id.label, b.median_ns
        );
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut b);
        println!("{}/{}: median {:.1} ns/iter", self.name, id, b.median_ns);
        self
    }

    /// Ends the group (no-op in this shim).
    pub fn finish(self) {}
}

/// Entry point handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: 10,
            median_ns: 0.0,
        };
        f(&mut b);
        println!("{name}: median {:.1} ns/iter", b.median_ns);
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
