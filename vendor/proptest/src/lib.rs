//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build environment has no crates.io access, so instead of the real
//! crate the workspace vendors a small random-testing harness with the
//! same surface: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `boxed`, range and tuple strategies, [`Just`], [`any`],
//! [`collection::vec`] / [`collection::btree_set`], the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] /
//! [`prop_oneof!`] macros and [`ProptestConfig`].
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its case number and message but is not minimised), and sampling is
//! deterministic per test (seeded from the test name) rather than from OS
//! entropy. Both are acceptable for CI-style regression testing; if a
//! property fails, the failure reproduces on every run.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng as _, RngCore, SampleRange, SeedableRng};

/// The RNG handed to strategies while generating test cases.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Creates a deterministic RNG for one property test.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot pick from an empty set of options");
        (self.next_u64() % bound as u64) as usize
    }

    fn sample<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to obtain a dependent strategy,
    /// then samples from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample_value(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample_value(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample_value(rng)).sample_value(rng)
    }
}

/// A strategy that always yields a clone of its payload.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased strategies; built by [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `options`; panics if empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample_value(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_index(self.options.len());
        self.options[idx].sample_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Strategy for "any value of `T`"; see [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Returns the whole-domain strategy for `T` (e.g. `any::<bool>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A half-open size window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            self.lo + rng.gen_index(self.hi - self.lo)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.elem.sample_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size from `size`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates ordered sets whose elements come from `elem`. If the
    /// element domain is too small to reach the drawn size, the set is
    /// returned at its achievable size once insertion stops making
    /// progress.
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 50 + 100 {
                set.insert(self.elem.sample_value(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Runner configuration; only `cases` is meaningful in this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config requiring `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!` precondition; it is
    /// discarded without counting against the case budget.
    Reject(String),
    /// A `prop_assert!`-style assertion failed.
    Fail(String),
}

/// Result of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property test: generates and runs cases until `config.cases`
/// pass, a case fails, or the reject budget is exhausted.
///
/// This is the runtime behind the [`proptest!`] macro; user code does not
/// normally call it directly.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = TestRng::seeded(fnv1a(name));
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let reject_budget = u64::from(config.cases) * 64 + 10_000;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "proptest '{name}': too many rejected cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed after {passed} passing case(s): {msg}");
            }
        }
    }
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, flag in any::<bool>()) {
///         prop_assert!(x < 100 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(@cfg($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest($cfg, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::sample_value(&($strat), __proptest_rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_tests!(@cfg($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)*), __l, __r),
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
        Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in -3i64..=3, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..=3).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(
            v in crate::collection::vec((0u32..10, any::<bool>()).prop_map(|(n, b)| if b { n } else { 0 }), 0..5),
        ) {
            prop_assert!(v.len() < 5);
            for n in v {
                prop_assert!(n < 10);
            }
        }

        #[test]
        fn oneof_picks_every_branch_eventually(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn btree_set_reaches_target_size() {
        let strat = crate::collection::btree_set(0u64..1_000, 3..6);
        let mut rng = crate::TestRng::seeded(9);
        for _ in 0..50 {
            let s = crate::Strategy::sample_value(&strat, &mut rng);
            assert!((3..6).contains(&s.len()), "len {}", s.len());
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics() {
        crate::run_proptest(ProptestConfig::with_cases(8), "always_fails", |_rng| {
            Err(TestCaseError::Fail(String::from("nope")))
        });
    }
}
