//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free shim instead of the real crate. It
//! provides [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::SmallRng`] with the same signatures the real crate exposes
//! for those items. The generator is SplitMix64: deterministic, fast, and
//! statistically strong enough for simulation workloads and tests (it is
//! the seeding generator the real `SmallRng` uses).
//!
//! Anything outside this subset is intentionally absent; if new code needs
//! more of the `rand` surface, extend this shim rather than adding a
//! registry dependency.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly "from all values" (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    ///
    /// Panics on an empty range, matching the real crate.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    ///
    /// Like the real `SmallRng` it is *not* cryptographically secure and
    /// its streams are only reproducible within this shim's version.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&y));
            let f = rng.gen_range(-1.0f64..2.0);
            assert!((-1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
